#include "control/admission.hh"

#include <string>

#include "common/logging.hh"

namespace preempt::control {

const char *
stateName(PolicyState state)
{
    switch (state) {
    case PolicyState::Admit:
        return "admit";
    case PolicyState::Throttle:
        return "throttle";
    case PolicyState::ShedBe:
        return "shed_be";
    case PolicyState::ShedLc:
        return "shed_lc";
    }
    return "?";
}

AdmissionController::AdmissionController(AdmissionParams params)
    : params_(params)
{
    fatal_if(params_.escalateAfter < 1 || params_.relaxAfter < 1,
             "hysteresis streaks must be >= 1");
    fatal_if(params_.dutySteps < 2, "dutySteps must be >= 2");
    fatal_if(params_.lcTrickle < 1, "lcTrickle must be >= 1");
    fatal_if(params_.queuedLowNs > params_.queuedHighNs ||
                 params_.violationLow > params_.violationHigh ||
                 params_.depthLow > params_.depthHigh,
             "admission low thresholds must not exceed the high ones");
}

AdmissionController::~AdmissionController()
{
#ifndef PREEMPT_OBS_DISABLED
    detachPublisher();
#endif
}

AdmissionController::Tenant &
AdmissionController::tenantRef(std::uint32_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
        it = tenants_.emplace(id, std::make_unique<Tenant>()).first;
        it->second->duty.store(params_.dutySteps,
                               std::memory_order_relaxed);
    }
    return *it->second;
}

bool
AdmissionController::decide(std::uint32_t tenant, int cls)
{
    Tenant &t = tenantRef(tenant);
    bool lc = cls == 0;
    (lc ? t.submittedLc : t.submittedBe)
        .fetch_add(1, std::memory_order_relaxed);

    auto s = static_cast<PolicyState>(
        t.state.load(std::memory_order_acquire));
    bool admit = true;
    switch (s) {
    case PolicyState::Admit:
        break;
    case PolicyState::Throttle:
        // LC always passes; BE at duty-in-dutySteps, spread evenly by
        // a deterministic per-tenant decision counter (no RNG).
        admit = lc ||
                t.beSeq.fetch_add(1, std::memory_order_relaxed) %
                        params_.dutySteps <
                    t.duty.load(std::memory_order_relaxed);
        break;
    case PolicyState::ShedBe:
        admit = lc;
        break;
    case PolicyState::ShedLc:
        // The only state that rejects LC — and it admits no BE, so
        // severity stays monotone by construction.
        admit = lc &&
                t.lcSeq.fetch_add(1, std::memory_order_relaxed) %
                        params_.lcTrickle ==
                    0;
        break;
    }

    if (admit) {
        (lc ? t.admittedLc : t.admittedBe)
            .fetch_add(1, std::memory_order_relaxed);
        obs::addCount("control.admit");
    } else {
        (lc ? t.rejectedLc : t.rejectedBe)
            .fetch_add(1, std::memory_order_relaxed);
        if (lc)
            obs::addCount("control.shed.lc");
        else if (s == PolicyState::Throttle)
            obs::addCount("control.throttle");
        else
            obs::addCount("control.shed.be");
    }
    return admit;
}

int
AdmissionController::pressure(const AdmissionSignals &signals,
                              const AdmissionParams &params)
{
    if (!signals.fresh)
        return 0; // untrusted inputs relax toward ADMIT (fail open)
    bool high = signals.queuedP99Ns >= params.queuedHighNs ||
                signals.violationRatio >= params.violationHigh ||
                signals.depth >= params.depthHigh;
    if (high)
        return 2;
    bool low = signals.queuedP99Ns <= params.queuedLowNs &&
               signals.violationRatio <= params.violationLow &&
               signals.depth <= params.depthLow;
    return low ? 0 : 1;
}

void
AdmissionController::setState(Tenant &t, PolicyState next)
{
    auto prev = static_cast<PolicyState>(
        t.state.load(std::memory_order_relaxed));
    if (prev == next)
        return;
    // Entering THROTTLE starts the duty cycle at the gentle end for
    // the direction travelled: barely shedding when escalating from
    // ADMIT, barely admitting when recovering from SHED_BE.
    if (next == PolicyState::Throttle)
        t.duty.store(prev == PolicyState::Admit ? params_.dutySteps - 1
                                                : 1,
                     std::memory_order_relaxed);
    t.state.store(static_cast<std::uint8_t>(next),
                  std::memory_order_release);
    ++t.stateChanges;
}

void
AdmissionController::onTick(std::uint32_t tenant,
                            const AdmissionSignals &signals)
{
    Tenant &t = tenantRef(tenant);
    ++t.ticks;
    int pr = pressure(signals, params_);
    auto s = static_cast<PolicyState>(
        t.state.load(std::memory_order_relaxed));
    std::uint32_t duty = t.duty.load(std::memory_order_relaxed);

    if (pr == 2) {
        t.lowStreak = 0;
        ++t.highStreak;
        // Tighten the duty cycle first: BE degrades one step per tick
        // inside THROTTLE before severity escalates past it.
        if (s == PolicyState::Throttle && duty > 1)
            t.duty.store(duty - 1, std::memory_order_relaxed);
        if (t.highStreak >= params_.escalateAfter &&
            s < PolicyState::ShedLc &&
            (s != PolicyState::Throttle ||
             t.duty.load(std::memory_order_relaxed) <= 1)) {
            setState(t, static_cast<PolicyState>(
                            static_cast<std::uint8_t>(s) + 1));
            t.highStreak = 0;
        }
    } else if (pr == 0) {
        t.highStreak = 0;
        ++t.lowStreak;
        // Recover the duty cycle before leaving THROTTLE entirely.
        if (s == PolicyState::Throttle && duty < params_.dutySteps)
            t.duty.store(duty + 1, std::memory_order_relaxed);
        if (t.lowStreak >= params_.relaxAfter && s > PolicyState::Admit &&
            (s != PolicyState::Throttle ||
             t.duty.load(std::memory_order_relaxed) >=
                 params_.dutySteps)) {
            setState(t, static_cast<PolicyState>(
                            static_cast<std::uint8_t>(s) - 1));
            t.lowStreak = 0;
        }
    } else {
        // Hysteresis band: hold the state, restart both streaks.
        t.highStreak = 0;
        t.lowStreak = 0;
    }
}

PolicyState
AdmissionController::state(std::uint32_t tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return PolicyState::Admit;
    return static_cast<PolicyState>(
        it->second->state.load(std::memory_order_acquire));
}

TenantAdmissionStats
AdmissionController::tenantStats(std::uint32_t tenant) const
{
    TenantAdmissionStats out;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        out.duty = params_.dutySteps;
        return out;
    }
    const Tenant &t = *it->second;
    out.state = static_cast<PolicyState>(
        t.state.load(std::memory_order_acquire));
    out.duty = t.duty.load(std::memory_order_relaxed);
    out.ticks = t.ticks;
    out.stateChanges = t.stateChanges;
    out.submittedLc = t.submittedLc.load(std::memory_order_relaxed);
    out.submittedBe = t.submittedBe.load(std::memory_order_relaxed);
    out.admittedLc = t.admittedLc.load(std::memory_order_relaxed);
    out.admittedBe = t.admittedBe.load(std::memory_order_relaxed);
    out.rejectedLc = t.rejectedLc.load(std::memory_order_relaxed);
    out.rejectedBe = t.rejectedBe.load(std::memory_order_relaxed);
    return out;
}

std::vector<std::uint32_t>
AdmissionController::tenants() const
{
    std::vector<std::uint32_t> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(tenants_.size());
    for (const auto &kv : tenants_)
        out.push_back(kv.first);
    return out;
}

void
AdmissionController::exportMetrics(obs::MetricsRegistry &registry)
{
    auto bump = [&registry](const std::string &name, std::uint64_t total,
                            std::uint64_t &prev) {
        if (total > prev)
            registry.counter(name).add(total - prev);
        prev = total;
    };
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : tenants_) {
        Tenant &t = *kv.second;
        std::string suffix = "/t" + std::to_string(kv.first);
        registry.gauge("control.state" + suffix)
            .set(t.state.load(std::memory_order_acquire));
        registry.gauge("control.duty" + suffix)
            .set(t.duty.load(std::memory_order_relaxed));
        bump("control.admitted.lc" + suffix,
             t.admittedLc.load(std::memory_order_relaxed),
             t.pubAdmittedLc);
        bump("control.admitted.be" + suffix,
             t.admittedBe.load(std::memory_order_relaxed),
             t.pubAdmittedBe);
        bump("control.rejected.lc" + suffix,
             t.rejectedLc.load(std::memory_order_relaxed),
             t.pubRejectedLc);
        bump("control.rejected.be" + suffix,
             t.rejectedBe.load(std::memory_order_relaxed),
             t.pubRejectedBe);
    }
}

#ifndef PREEMPT_OBS_DISABLED

AdmissionSignals
AdmissionController::signalsFromSnapshot(
    const obs::TelemetrySnapshot &snap, std::uint32_t tenant)
{
    AdmissionSignals out;
    out.fresh = snap.seq != 0;
    for (const auto &ts : snap.spans) {
        if (ts.tenant != tenant)
            continue;
        // Windowed figures only: counter resets re-base lifetime
        // rates, but the window is rebuilt from epoch histograms, so
        // the ratio cannot spike on a re-base.
        out.queuedP99Ns = ts.window.queued.p99;
        std::uint64_t finished =
            ts.window.completed + ts.window.cancelled;
        out.violationRatio =
            finished == 0 ? 0.0
                          : static_cast<double>(ts.window.violations) /
                                static_cast<double>(finished);
        break;
    }
    std::string depthGauge =
        tenant == 0 ? "runtime.in_flight"
                    : "runtime/t" + std::to_string(tenant) + ".in_flight";
    for (const auto &g : snap.gauges) {
        if (g.name == depthGauge) {
            out.depth = g.value;
            break;
        }
    }
    return out;
}

void
AdmissionController::onSnapshot(const obs::TelemetrySnapshot &snap)
{
    bool fresh = snap.seq != 0 && snap.seq != lastSeq_;
    lastSeq_ = snap.seq;

    std::vector<std::uint32_t> ids = tenants();
    for (const auto &ts : snap.spans) {
        bool known = false;
        for (std::uint32_t id : ids)
            known = known || id == ts.tenant;
        if (!known)
            ids.push_back(ts.tenant);
    }
    for (std::uint32_t id : ids) {
        AdmissionSignals s;
        if (fresh)
            s = signalsFromSnapshot(snap, id);
        s.fresh = s.fresh && fresh;
        onTick(id, s);
    }
}

void
AdmissionController::attachPublisher(obs::TelemetryPublisher *publisher)
{
    detachPublisher();
    publisher_ = publisher;
    if (!publisher_)
        return;
    // Samplers run on the publisher thread right before each snapshot
    // is built: polling snapshot() here reads the previous published
    // one (a one-tick-delayed closed loop), and the control series
    // exported below land in the snapshot being built.
    samplerId_ = obs::registerTelemetrySampler(
        [this](obs::MetricsRegistry &registry) {
            onSnapshot(publisher_->snapshot());
            exportMetrics(registry);
        });
}

void
AdmissionController::detachPublisher()
{
    if (samplerId_ != 0) {
        obs::unregisterTelemetrySampler(samplerId_);
        samplerId_ = 0;
    }
    publisher_ = nullptr;
}

#endif // !PREEMPT_OBS_DISABLED

} // namespace preempt::control
