#include "hw/machine.hh"

#include "common/logging.hh"

namespace preempt::hw {

Machine::Machine(sim::Simulator &sim, const LatencyConfig &cfg, int n_cores)
    : sim_(sim), cfg_(cfg)
{
    fatal_if(n_cores <= 0, "machine needs at least one core");
    cores_.resize(static_cast<std::size_t>(n_cores));
}

Machine::CoreState &
Machine::core(int c)
{
    panic_if(c < 0 || static_cast<std::size_t>(c) >= cores_.size(),
             "invalid core id %d", c);
    return cores_[static_cast<std::size_t>(c)];
}

const Machine::CoreState &
Machine::core(int c) const
{
    panic_if(c < 0 || static_cast<std::size_t>(c) >= cores_.size(),
             "invalid core id %d", c);
    return cores_[static_cast<std::size_t>(c)];
}

void
Machine::setRole(int c, CoreRole role)
{
    core(c).role = role;
}

CoreRole
Machine::role(int c) const
{
    return core(c).role;
}

void
Machine::addBusy(int c, TimeNs duration)
{
    core(c).busy += duration;
}

double
Machine::utilization(int c) const
{
    TimeNs now = sim_.now();
    if (now == 0)
        return 0.0;
    return static_cast<double>(core(c).busy) / static_cast<double>(now);
}

TimeNs
Machine::totalBusy() const
{
    TimeNs total = 0;
    for (const auto &c : cores_)
        total += c.busy;
    return total;
}

double
Machine::powerWatts() const
{
    double watts = 0;
    bool first_timer = true;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const CoreState &c = cores_[i];
        switch (c.role) {
          case CoreRole::Timer:
            // First timer core pays the UMWAIT polling cost; extra
            // timer cores are nearly free (paper section V-B).
            watts += first_timer ? cfg_.timerCoreWatts
                                 : cfg_.extraTimerCoreWatts;
            first_timer = false;
            break;
          case CoreRole::Worker:
          case CoreRole::Dispatcher:
            watts += cfg_.workerCoreWatts * utilization(static_cast<int>(i));
            break;
          case CoreRole::Idle:
            break;
        }
    }
    return watts;
}

} // namespace preempt::hw
