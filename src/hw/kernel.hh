/**
 * @file
 * Kernel cost models: signal delivery with the serialized in-kernel
 * critical section that causes timer-signal contention (Fig. 11), and
 * POSIX kernel timers with their granularity floor and jitter
 * (Fig. 12).
 */

#ifndef PREEMPT_HW_KERNEL_HH
#define PREEMPT_HW_KERNEL_HH

#include <cstdint>
#include <functional>

#include "common/time.hh"
#include "hw/latency_config.hh"
#include "sim/simulator.hh"

namespace preempt::hw {

/**
 * Kernel signal delivery path. Every in-flight signal serialises on a
 * shared kernel lock (modelled as a FIFO server with a fixed hold
 * time), so signals issued simultaneously to many threads queue behind
 * one another — the superlinear effect in Fig. 11's "creation-time"
 * per-thread timers.
 */
class SignalPath
{
  public:
    SignalPath(sim::Simulator &sim, const LatencyConfig &cfg);

    /**
     * Deliver a signal to a thread.
     *
     * @param handler invoked at handler-entry time with (now, total
     *                delivery delay from issue to handler entry,
     *                including kernel-lock queueing).
     */
    void sendSignal(std::function<void(TimeNs, TimeNs)> handler);

    /** Signals delivered so far. */
    std::uint64_t delivered() const { return delivered_; }

    /** Signals lost in the kernel (fault injection). */
    std::uint64_t dropped() const { return dropped_; }

    /** Mean kernel queueing delay per delivered signal. */
    double meanQueueingNs() const;

  private:
    sim::Simulator &sim_;
    LatencyConfig cfg_;
    Rng rng_;
    TimeNs lockFreeAt_;
    std::uint64_t delivered_;
    std::uint64_t dropped_ = 0;
    double totalQueueingNs_;
};

/**
 * POSIX per-thread kernel timer (timer_create/timer_settime). Expiry
 * respects the kernel granularity floor and jitter, and each expiry is
 * delivered through the SignalPath.
 */
class KernelTimer
{
  public:
    /**
     * @param sim simulation driver
     * @param cfg cost model
     * @param signals shared signal path (kernel lock domain)
     */
    KernelTimer(sim::Simulator &sim, const LatencyConfig &cfg,
                SignalPath &signals);

    /**
     * Arm (or re-arm) the timer.
     *
     * @param interval requested interval; clamped to the kernel floor.
     * @param periodic when true the timer re-arms itself on expiry.
     * @param handler  called at signal-handler entry with (now, total
     *                 signal delivery delay).
     * @return the syscall cost paid by the calling thread.
     */
    TimeNs arm(TimeNs interval, bool periodic,
               std::function<void(TimeNs, TimeNs)> handler);

    /** Disarm; pending expiries are dropped. */
    TimeNs disarm();

    /** Effective interval after the granularity clamp. */
    TimeNs effectiveInterval() const { return effectiveInterval_; }

    std::uint64_t expiries() const { return expiries_; }

  private:
    void scheduleExpiry();

    sim::Simulator &sim_;
    LatencyConfig cfg_;
    SignalPath &signals_;
    Rng rng_;
    std::uint64_t generation_;
    bool periodic_;
    TimeNs effectiveInterval_;
    TimeNs baseline_;        ///< arm time; expiries stay phase-aligned
    std::uint64_t expiryIndex_;
    std::function<void(TimeNs, TimeNs)> handler_;
    std::uint64_t expiries_;
};

} // namespace preempt::hw

#endif // PREEMPT_HW_KERNEL_HH
