#include "hw/posted_ipi.hh"

#include "common/logging.hh"
#include "fault/fault.hh"

namespace preempt::hw {

PostedIpiUnit::PostedIpiUnit(sim::Simulator &sim, const LatencyConfig &cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.rng().fork(0x61706963))
{
}

int
PostedIpiUnit::attachTarget(Handler handler)
{
    fatal_if(!handler, "posted-IPI target needs a handler");
    fatal_if(static_cast<int>(targets_.size()) >= cfg_.apicMaxTargets,
             "APIC mapping supports at most %d logical targets",
             cfg_.apicMaxTargets);
    targets_.push_back(Target{std::move(handler), false});
    return static_cast<int>(targets_.size()) - 1;
}

TimeNs
PostedIpiUnit::sendIpi(int target)
{
    panic_if(target < 0 ||
                 static_cast<std::size_t>(target) >= targets_.size(),
             "posted IPI to unattached target %d", target);
    ++stats_.sends;
    Target &t = targets_[static_cast<std::size_t>(target)];
    if (t.pending) {
        // The APIC pending bit is already set; this send merges.
        ++stats_.coalesced;
        return cfg_.postedIpiSend;
    }
    TimeNs delay = cfg_.postedIpiDelivery.sample(rng_) +
                   cfg_.shinjukuTrapCost;
    fault::TransportFault f = fault::onTransport(
        fault::Site::Ipi, sim_.now(),
        static_cast<std::uint32_t>(target));
    if (f.drop) {
        // Lost ICR write: the pending bit never sets, so a later send
        // is not coalesced away and retries delivery.
        ++stats_.dropped;
        return cfg_.postedIpiSend;
    }
    t.pending = true;
    auto deliver = [this, target](TimeNs now) {
        Target &tt = targets_[static_cast<std::size_t>(target)];
        if (!tt.pending) {
            // Duplicated IPI for an already-served pending bit.
            ++stats_.redundant;
            return;
        }
        tt.pending = false;
        ++stats_.delivered;
        tt.handler(now);
    };
    sim_.after(delay + f.delay, deliver);
    if (f.duplicate)
        sim_.after(delay + f.delay + f.duplicateDelay, deliver);
    return cfg_.postedIpiSend;
}

} // namespace preempt::hw
