#include "hw/posted_ipi.hh"

#include "common/logging.hh"

namespace preempt::hw {

PostedIpiUnit::PostedIpiUnit(sim::Simulator &sim, const LatencyConfig &cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.rng().fork(0x61706963))
{
}

int
PostedIpiUnit::attachTarget(Handler handler)
{
    fatal_if(!handler, "posted-IPI target needs a handler");
    fatal_if(static_cast<int>(targets_.size()) >= cfg_.apicMaxTargets,
             "APIC mapping supports at most %d logical targets",
             cfg_.apicMaxTargets);
    targets_.push_back(Target{std::move(handler), false});
    return static_cast<int>(targets_.size()) - 1;
}

TimeNs
PostedIpiUnit::sendIpi(int target)
{
    panic_if(target < 0 ||
                 static_cast<std::size_t>(target) >= targets_.size(),
             "posted IPI to unattached target %d", target);
    ++stats_.sends;
    Target &t = targets_[static_cast<std::size_t>(target)];
    if (t.pending) {
        // The APIC pending bit is already set; this send merges.
        ++stats_.coalesced;
        return cfg_.postedIpiSend;
    }
    t.pending = true;
    TimeNs delay = cfg_.postedIpiDelivery.sample(rng_) +
                   cfg_.shinjukuTrapCost;
    sim_.after(delay, [this, target](TimeNs now) {
        Target &tt = targets_[static_cast<std::size_t>(target)];
        tt.pending = false;
        ++stats_.delivered;
        tt.handler(now);
    });
    return cfg_.postedIpiSend;
}

} // namespace preempt::hw
