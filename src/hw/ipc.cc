#include "hw/ipc.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace preempt::hw {

std::vector<IpcMechanism>
allIpcMechanisms(const LatencyConfig &cfg)
{
    std::vector<IpcMechanism> out;
    out.push_back({IpcKind::Signal, "signal",
                   cfg.syscallCost, 0, cfg.signalDelivery, true});
    out.push_back({IpcKind::MessageQueue, "mq",
                   cfg.syscallCost, 0, cfg.mqDelivery, true});
    out.push_back({IpcKind::Pipe, "pipe",
                   cfg.syscallCost, 0, cfg.pipeDelivery, true});
    out.push_back({IpcKind::EventFd, "eventFD",
                   cfg.syscallCost, 0, cfg.eventfdDelivery, true});
    out.push_back({IpcKind::UintrFd, "uintrFd",
                   cfg.senduipiCost, 380, cfg.uintrRunning, false});
    out.push_back({IpcKind::UintrFdBlocked, "uintrFd (blocked)",
                   cfg.senduipiCost, 0, cfg.uintrBlocked, false});
    return out;
}

IpcMechanism
ipcMechanism(IpcKind kind, const LatencyConfig &cfg)
{
    for (auto &m : allIpcMechanisms(cfg)) {
        if (m.kind == kind)
            return m;
    }
    panic("unknown IPC mechanism kind");
}

IpcBenchResult
runIpcPingPong(const IpcMechanism &mech, std::uint64_t n,
               std::uint64_t seed)
{
    fatal_if(n == 0, "ping-pong needs at least one message");
    Rng rng(seed);
    RunningStats stats;
    double min_ns = -1;
    double total_ns = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        TimeNs lat = mech.oneWay.sample(rng);
        double v = static_cast<double>(lat);
        stats.add(v);
        if (min_ns < 0 || v < min_ns)
            min_ns = v;
        // The sustained message rate includes the sender's issue cost
        // because ping-pong alternates roles.
        total_ns += v + static_cast<double>(mech.senderCost) +
                    static_cast<double>(mech.receiverCost);
    }
    IpcBenchResult res;
    res.name = mech.name;
    res.avgUs = stats.mean() / 1e3;
    res.minUs = min_ns / 1e3;
    res.stdUs = stats.stddev() / 1e3;
    res.rateMsgPerSec = static_cast<double>(n) / (total_ns / 1e9);
    return res;
}

} // namespace preempt::hw
