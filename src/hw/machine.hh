/**
 * @file
 * Simulated machine: a set of cores with busy-time accounting and the
 * power model used to justify the dedicated timer core (section V-B).
 */

#ifndef PREEMPT_HW_MACHINE_HH
#define PREEMPT_HW_MACHINE_HH

#include <cstdint>
#include <vector>

#include "common/time.hh"
#include "hw/latency_config.hh"
#include "sim/simulator.hh"

namespace preempt::hw {

/** Role a core plays in a runtime configuration. */
enum class CoreRole { Worker, Dispatcher, Timer, Idle };

/** A multicore machine with per-core accounting. */
class Machine
{
  public:
    /**
     * @param sim simulation driver (for the clock)
     * @param cfg cost calibration
     * @param n_cores logical core count
     */
    Machine(sim::Simulator &sim, const LatencyConfig &cfg, int n_cores);

    int numCores() const { return static_cast<int>(cores_.size()); }

    /** Assign a role (affects the power model). */
    void setRole(int core, CoreRole role);
    CoreRole role(int core) const;

    /** Account busy CPU time on a core. */
    void addBusy(int core, TimeNs duration);

    /** Busy fraction of a core over the elapsed simulation time. */
    double utilization(int core) const;

    /** Total busy time across all cores. */
    TimeNs totalBusy() const;

    /**
     * Power draw estimate: timer cores poll with UMWAIT at the
     * calibrated low wattage; worker/dispatcher cores are charged by
     * utilization.
     */
    double powerWatts() const;

    const LatencyConfig &config() const { return cfg_; }

  private:
    struct CoreState
    {
        CoreRole role = CoreRole::Idle;
        TimeNs busy = 0;
    };

    CoreState &core(int core);
    const CoreState &core(int core) const;

    sim::Simulator &sim_;
    LatencyConfig cfg_;
    std::vector<CoreState> cores_;
};

} // namespace preempt::hw

#endif // PREEMPT_HW_MACHINE_HH
