/**
 * @file
 * Functional model of Shinjuku-style posted inter-processor
 * interrupts: the dispatcher maps the physical APIC into its address
 * space (ring 3) and writes the ICR directly to interrupt worker
 * cores.
 *
 * The model captures the properties the paper contrasts with UINTR
 * (sections I, VI, VII-B):
 *  - sends are cheap MMIO writes but delivery interrupts the target in
 *    ring 0 first (trap cost on the worker);
 *  - the mapped APIC supports only a bounded number of logical
 *    targets;
 *  - *any* code with the mapping can flood any core — there is no
 *    kernel-maintained target table, which is exactly the DoS exposure
 *    LibPreemptible avoids. The model exposes this as an unrestricted
 *    send interface plus flood accounting.
 */

#ifndef PREEMPT_HW_POSTED_IPI_HH
#define PREEMPT_HW_POSTED_IPI_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hh"
#include "hw/latency_config.hh"
#include "sim/simulator.hh"

namespace preempt::hw {

/** Per-unit delivery statistics. */
struct PostedIpiStats
{
    std::uint64_t sends = 0;
    std::uint64_t delivered = 0;
    std::uint64_t coalesced = 0; ///< sends merged into a pending IPI
    std::uint64_t dropped = 0;   ///< lost in transit (fault injection)
    std::uint64_t redundant = 0; ///< duplicated deliveries for an
                                 ///< already-cleared pending bit
};

/** A ring-3-mapped APIC as Shinjuku uses it. */
class PostedIpiUnit
{
  public:
    /** Handler invoked on the target when the IPI lands. */
    using Handler = std::function<void(TimeNs)>;

    PostedIpiUnit(sim::Simulator &sim, const LatencyConfig &cfg);

    /**
     * Attach a target logical core. Bounded by the APIC's target
     * limit.
     * @return target id for sendIpi().
     */
    int attachTarget(Handler handler);

    /**
     * Write the ICR: post an IPI to a target. No permission check —
     * the mapping *is* the capability (the security problem the paper
     * describes). Repeated sends while one is pending coalesce, as the
     * APIC has a single pending bit per vector.
     *
     * @return sender-side MMIO cost.
     */
    TimeNs sendIpi(int target);

    const PostedIpiStats &stats() const { return stats_; }

    int targets() const { return static_cast<int>(targets_.size()); }

  private:
    struct Target
    {
        Handler handler;
        bool pending = false;
    };

    sim::Simulator &sim_;
    LatencyConfig cfg_;
    Rng rng_;
    std::vector<Target> targets_;
    PostedIpiStats stats_;
};

} // namespace preempt::hw

#endif // PREEMPT_HW_POSTED_IPI_HH
