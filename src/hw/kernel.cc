#include "hw/kernel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault.hh"

namespace preempt::hw {

SignalPath::SignalPath(sim::Simulator &sim, const LatencyConfig &cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.rng().fork(0x7369676e)),
      lockFreeAt_(0), delivered_(0), totalQueueingNs_(0)
{
}

void
SignalPath::sendSignal(std::function<void(TimeNs, TimeNs)> handler)
{
    panic_if(!handler, "signal without a handler");
    TimeNs now = sim_.now();
    // FIFO kernel lock: queueing delay grows with in-flight signals.
    TimeNs start = std::max(now, lockFreeAt_);
    TimeNs queueing = start - now;
    lockFreeAt_ = start + cfg_.signalLockHold;

    TimeNs path = cfg_.signalDelivery.sample(rng_);
    fault::TransportFault f = fault::onTransport(fault::Site::Signal,
                                                now, 0);
    if (f.drop) {
        // Signal lost in the kernel (after the lock slot was consumed):
        // the caller's timer chain continues, this expiry never lands.
        ++dropped_;
        return;
    }
    TimeNs entry_delay = queueing + path + cfg_.signalHandlerCost +
                         f.delay;
    sim_.after(entry_delay, [this, handler = std::move(handler), queueing,
                             entry_delay](TimeNs t) {
        ++delivered_;
        totalQueueingNs_ += static_cast<double>(queueing);
        handler(t, entry_delay);
    });
}

double
SignalPath::meanQueueingNs() const
{
    return delivered_ ? totalQueueingNs_ / static_cast<double>(delivered_)
                      : 0.0;
}

KernelTimer::KernelTimer(sim::Simulator &sim, const LatencyConfig &cfg,
                         SignalPath &signals)
    : sim_(sim), cfg_(cfg), signals_(signals),
      rng_(sim.rng().fork(0x74696d72)), generation_(0), periodic_(false),
      effectiveInterval_(0), baseline_(0), expiryIndex_(0), expiries_(0)
{
}

TimeNs
KernelTimer::arm(TimeNs interval, bool periodic,
                 std::function<void(TimeNs, TimeNs)> handler)
{
    fatal_if(interval == 0, "kernel timer interval must be > 0");
    ++generation_;
    periodic_ = periodic;
    handler_ = std::move(handler);
    effectiveInterval_ = std::max(interval, cfg_.kernelTimerFloor);
    baseline_ = sim_.now();
    expiryIndex_ = 1;
    scheduleExpiry();
    return cfg_.timerProgramCost + cfg_.syscallCost;
}

TimeNs
KernelTimer::disarm()
{
    ++generation_;
    handler_ = nullptr;
    return cfg_.timerProgramCost + cfg_.syscallCost;
}

void
KernelTimer::scheduleExpiry()
{
    std::uint64_t gen = generation_;
    TimeNs jitter = cfg_.kernelTimerJitter.sample(rng_);
    // hrtimers expire against absolute times: each expiry stays
    // phase-aligned with the arm time, so timers armed together keep
    // contending forever (the Fig. 11 creation-time pathology).
    TimeNs expiry = baseline_ + effectiveInterval_ * expiryIndex_ + jitter;
    ++expiryIndex_;
    sim_.at(std::max(expiry, sim_.now()), [this, gen](TimeNs) {
        if (gen != generation_ || !handler_)
            return;
        ++expiries_;
        signals_.sendSignal(handler_);
        if (periodic_ && gen == generation_)
            scheduleExpiry();
    });
}

} // namespace preempt::hw
