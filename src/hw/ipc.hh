/**
 * @file
 * Catalogue of modelled IPC / event-notification mechanisms used by
 * the Table IV microbenchmark and the Fig. 1 motivation experiment.
 *
 * Each mechanism is characterised by a sender-side issue cost and a
 * calibrated one-way delivery-latency distribution.
 */

#ifndef PREEMPT_HW_IPC_HH
#define PREEMPT_HW_IPC_HH

#include <string>
#include <vector>

#include "common/time.hh"
#include "hw/latency_config.hh"

namespace preempt::hw {

/** Identity of a modelled notification mechanism. */
enum class IpcKind
{
    Signal,
    MessageQueue,
    Pipe,
    EventFd,
    UintrFd,
    UintrFdBlocked,
};

/** Static description + latency model of one mechanism. */
struct IpcMechanism
{
    IpcKind kind;
    std::string name;
    /** CPU cost paid by the sender to issue the notification. */
    TimeNs senderCost;
    /** Receiver-side cost outside the delivery path (handler body,
     *  uiret, re-entering the wait loop). */
    TimeNs receiverCost;
    /** One-way latency: issue -> receiver handler/wakeup. */
    JitterSpec oneWay;
    /** True when delivery transits the kernel. */
    bool viaKernel;
};

/** All mechanisms of Table IV, built from a latency configuration. */
std::vector<IpcMechanism> allIpcMechanisms(const LatencyConfig &cfg);

/** Lookup by kind. */
IpcMechanism ipcMechanism(IpcKind kind, const LatencyConfig &cfg);

/** Result of a simulated ping-pong microbenchmark run. */
struct IpcBenchResult
{
    std::string name;
    double avgUs;
    double minUs;
    double stdUs;
    double rateMsgPerSec;
};

/**
 * Run the Table IV experiment: n one-way notifications through the
 * mechanism, measuring delivery latency statistics and sustained
 * message rate.
 */
IpcBenchResult runIpcPingPong(const IpcMechanism &mech, std::uint64_t n,
                              std::uint64_t seed);

} // namespace preempt::hw

#endif // PREEMPT_HW_IPC_HH
