/**
 * @file
 * Functional model of Intel User Interrupts (UINTR).
 *
 * Implements the architectural state machine described in section III
 * of the paper and the Intel SDM: each receiver has a User Posted
 * Interrupt Descriptor (UPID) with a 64-bit pending-interrupt request
 * field (PIR), an outstanding-notification bit (ON) and a suppress bit
 * (SN, modelled through the running/UIF state); each sender has a User
 * Interrupt Target Table (UITT) of (UPID, vector) entries indexed by
 * SENDUIPI.
 *
 * Setup follows the native kernel API of Fig. 4:
 *   receiver: registerHandler() then createFd(vector)
 *   sender:   registerSender(fd) -> uipi index, then senduipi(index)
 *
 * Delivery semantics:
 *  - receiver running with UIF set: notification posted; handler entry
 *    after the calibrated running-delivery latency; UIF is cleared for
 *    the duration of the handler and restored by uiret().
 *  - receiver running with UIF clear, or descheduled: the vector
 *    accumulates in the PIR and is recognised when UIF is restored or
 *    the receiver is scheduled again.
 *  - receiver blocked in the kernel: an ordinary interrupt unblocks it
 *    (higher calibrated latency) and the user interrupt is injected on
 *    wakeup.
 */

#ifndef PREEMPT_HW_UINTR_HH
#define PREEMPT_HW_UINTR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hh"
#include "hw/latency_config.hh"
#include "sim/simulator.hh"

namespace preempt::hw {

/** Aggregate delivery statistics for the unit. */
struct UintrStats
{
    std::uint64_t sends = 0;
    std::uint64_t deliveredRunning = 0;
    std::uint64_t deliveredBlocked = 0;
    std::uint64_t suppressed = 0;   ///< sends absorbed into the PIR
    std::uint64_t spurious = 0;     ///< notifications that found the
                                    ///< receiver no longer eligible
    std::uint64_t redundant = 0;    ///< notifications that found the
                                    ///< PIR already cleared (duplicate
                                    ///< delivery / recognition races)
    std::uint64_t droppedNotifications = 0; ///< lost in transit
                                    ///< (fault injection)
    std::uint64_t resends = 0;      ///< watchdog re-notifications of an
                                    ///< unacknowledged PIR
    std::uint64_t resendsAbandoned = 0; ///< resend retry budget
                                    ///< exhausted
};

/** Models the UINTR hardware shared by all threads of a machine. */
class UintrUnit
{
  public:
    /**
     * Handler invoked at delivery time with the set of pending vectors
     * (a 64-bit mask). The receiver's UIF is clear during the handler;
     * the runtime must call uiret() when the handler logically
     * finishes.
     */
    using Handler = std::function<void(TimeNs now, std::uint64_t vectors)>;

    /** Invoked when a blocked receiver is woken by a user interrupt. */
    using WakeCallback = std::function<void(TimeNs now)>;

    UintrUnit(sim::Simulator &sim, const LatencyConfig &cfg);

    // ----- Receiver-side setup (uintr_register_handler & friends) ---

    /**
     * Register a receiver thread and its interrupt handler.
     * The receiver starts running with UIF set.
     * @return receiver id.
     */
    int registerHandler(Handler handler, WakeCallback wake = nullptr);

    /**
     * Create a uintr file descriptor for (receiver, vector); senders
     * use it to obtain a UITT entry.
     * @return fd token.
     */
    int createFd(int receiver, int vector);

    /** Tear down a receiver; outstanding sends to it are dropped. */
    void unregisterHandler(int receiver);

    // ----- Sender-side setup (uintr_register_sender) -----------------

    /**
     * Allocate a UITT entry from a uintr fd.
     * @return uipi index for senduipi().
     */
    int registerSender(int fd);

    // ----- Delivery ---------------------------------------------------

    /**
     * SENDUIPI: post the vector to the target's UPID and notify.
     * @return the sender-side issue cost (the caller accounts it).
     */
    TimeNs senduipi(int uipi_index);

    /** Restore UIF after a handler completes; recognises pending PIR. */
    void uiret(int receiver);

    // ----- Receiver scheduling state (driven by the runtime model) ---

    /** Mark the receiver on-CPU / descheduled. */
    void setRunning(int receiver, bool running);

    /** Mark the receiver blocked in the kernel (e.g. in read()). */
    void setBlocked(int receiver, bool blocked);

    /**
     * uintr_wait(): the native blocking call — the receiver parks in
     * the kernel until a user interrupt arrives (Fig. 4). Equivalent
     * to setBlocked(receiver, true); the wake callback fires when a
     * sender unblocks it.
     */
    void wait(int receiver) { setBlocked(receiver, true); }

    /** Explicitly set/clear UIF (CLUI/STUI instructions). */
    void setUif(int receiver, bool uif);

    bool running(int receiver) const;
    bool blocked(int receiver) const;
    bool uif(int receiver) const;

    /** Pending vector mask of a receiver's UPID. */
    std::uint64_t pending(int receiver) const;

    const UintrStats &stats() const { return stats_; }

    /** Number of UITT entries allocated (per-process table size). */
    std::size_t uittSize() const { return uitt_.size(); }

  private:
    struct Receiver
    {
        Handler handler;
        WakeCallback wake;
        std::uint64_t pir = 0;      ///< pending interrupt requests
        bool on = false;            ///< outstanding notification
        bool running = true;
        bool blocked = false;
        bool uifFlag = true;
        bool valid = true;
        std::uint64_t generation = 0; ///< invalidates in-flight events
        /** Time of the SENDUIPI that posted the oldest still-pending
         *  PIR bit; measures send-to-delivery latency (Table IV). */
        TimeNs pirPostedAt = 0;
    };

    struct UittEntry
    {
        int receiver;
        int vector;
        bool valid;
    };

    struct FdEntry
    {
        int receiver;
        int vector;
        bool valid;
    };

    Receiver &rx(int receiver);
    const Receiver &rx(int receiver) const;

    /** Try to schedule a notification for pending vectors. */
    void notify(int receiver);

    /** Schedule one running-receiver delivery event after `delay`.
     *  `dup` marks a fault-injected duplicated copy (it must not clear
     *  the genuine outstanding-notification bit). */
    void scheduleRunningDelivery(int receiver, std::uint64_t gen,
                                 TimeNs delay, bool dup);

    /** Schedule one blocked-receiver kernel wake after `delay`. */
    void scheduleBlockedWake(int receiver, std::uint64_t gen,
                             TimeNs delay, bool dup);

    /** Schedule PIR recognition after an eligibility transition
     *  (uiret / resume); never fault-injected, so a parked request is
     *  always recoverable through a transition. */
    void scheduleRecognition(int receiver);

    /**
     * Mitigation: watch an unacknowledged PIR batch and re-notify with
     * bounded exponential backoff if no delivery lands (recovers from
     * dropped notifications). Only armed while fault injection is
     * active, so the zero-fault event schedule is untouched.
     */
    void armResend(int receiver, TimeNs posted_at, int attempt);

    /** Deliver all pending vectors to an eligible receiver now. */
    void deliverNow(int receiver, TimeNs now);

    /** Trace/metrics hook for a running-receiver delivery. */
    void noteDeliveredRunning(int receiver, TimeNs now);

    sim::Simulator &sim_;
    LatencyConfig cfg_;
    Rng rng_;
    std::vector<Receiver> receivers_;
    std::vector<FdEntry> fds_;
    std::vector<UittEntry> uitt_;
    UintrStats stats_;
};

} // namespace preempt::hw

#endif // PREEMPT_HW_UINTR_HH
