#include "hw/uintr.hh"

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace preempt::hw {

namespace {

/** Trace tracks for uintr events are the receiver ids (in the
 *  simulated runtimes a receiver is a worker thread). */
std::uint32_t
track(int receiver)
{
    return static_cast<std::uint32_t>(receiver);
}

/** Resend watchdog: first check after kResendBaseNs, doubling each
 *  retry, giving up after kResendMaxAttempts re-notifications. The
 *  base sits above the calibrated blocked-delivery latency so a
 *  healthy notification always lands before the first check. */
constexpr TimeNs kResendBaseNs = 4000;
constexpr int kResendMaxAttempts = 5;

} // namespace

UintrUnit::UintrUnit(sim::Simulator &sim, const LatencyConfig &cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.rng().fork(0x75696e74))
{
}

UintrUnit::Receiver &
UintrUnit::rx(int receiver)
{
    panic_if(receiver < 0 ||
                 static_cast<std::size_t>(receiver) >= receivers_.size(),
             "invalid uintr receiver id %d", receiver);
    return receivers_[static_cast<std::size_t>(receiver)];
}

const UintrUnit::Receiver &
UintrUnit::rx(int receiver) const
{
    panic_if(receiver < 0 ||
                 static_cast<std::size_t>(receiver) >= receivers_.size(),
             "invalid uintr receiver id %d", receiver);
    return receivers_[static_cast<std::size_t>(receiver)];
}

int
UintrUnit::registerHandler(Handler handler, WakeCallback wake)
{
    fatal_if(!handler, "uintr receiver requires a handler");
    Receiver r;
    r.handler = std::move(handler);
    r.wake = std::move(wake);
    receivers_.push_back(std::move(r));
    return static_cast<int>(receivers_.size()) - 1;
}

int
UintrUnit::createFd(int receiver, int vector)
{
    fatal_if(vector < 0 || vector >= 64,
             "uintr vector %d out of range [0,64)", vector);
    rx(receiver); // validate
    fds_.push_back(FdEntry{receiver, vector, true});
    return static_cast<int>(fds_.size()) - 1;
}

void
UintrUnit::unregisterHandler(int receiver)
{
    Receiver &r = rx(receiver);
    r.valid = false;
    r.pir = 0;
    r.on = false;
    ++r.generation;
    for (auto &fd : fds_) {
        if (fd.receiver == receiver)
            fd.valid = false;
    }
    for (auto &e : uitt_) {
        if (e.receiver == receiver)
            e.valid = false;
    }
}

int
UintrUnit::registerSender(int fd)
{
    fatal_if(fd < 0 || static_cast<std::size_t>(fd) >= fds_.size(),
             "invalid uintr fd %d", fd);
    const FdEntry &entry = fds_[static_cast<std::size_t>(fd)];
    fatal_if(!entry.valid, "uintr fd %d has been closed", fd);
    uitt_.push_back(UittEntry{entry.receiver, entry.vector, true});
    return static_cast<int>(uitt_.size()) - 1;
}

TimeNs
UintrUnit::senduipi(int uipi_index)
{
    panic_if(uipi_index < 0 ||
                 static_cast<std::size_t>(uipi_index) >= uitt_.size(),
             "SENDUIPI with invalid UITT index %d", uipi_index);
    const UittEntry &entry = uitt_[static_cast<std::size_t>(uipi_index)];
    ++stats_.sends;
    if (!entry.valid)
        return cfg_.senduipiCost; // dropped, like a closed fd

    Receiver &r = rx(entry.receiver);
    if (!r.valid)
        return cfg_.senduipiCost;

    if (r.pir == 0)
        r.pirPostedAt = sim_.now();
    r.pir |= 1ULL << entry.vector;
    obs::emit(obs::EventKind::UintrSend, track(entry.receiver),
              sim_.now(), static_cast<std::uint64_t>(entry.receiver),
              static_cast<std::uint64_t>(entry.vector));
    notify(entry.receiver);
    if (fault::active())
        armResend(entry.receiver, r.pirPostedAt, 0);
    return cfg_.senduipiCost;
}

void
UintrUnit::notify(int receiver)
{
    Receiver &r = rx(receiver);
    if (r.pir == 0 || r.on)
        return;

    if (r.blocked) {
        // Ordinary interrupt unblocks the receiver; the user interrupt
        // is injected when it resumes (higher calibrated latency).
        TimeNs delay = cfg_.uintrBlocked.sample(rng_);
        fault::TransportFault f = fault::onTransport(
            fault::Site::Wake, sim_.now(), track(receiver));
        if (f.drop) {
            // Lost in transit: ON stays clear, so a later send, an
            // eligibility transition, or the resend watchdog retries.
            ++stats_.droppedNotifications;
            return;
        }
        r.on = true;
        std::uint64_t gen = r.generation;
        scheduleBlockedWake(receiver, gen, delay + f.delay, false);
        if (f.duplicate)
            scheduleBlockedWake(receiver, gen,
                                delay + f.delay + f.duplicateDelay,
                                true);
        return;
    }

    if (!r.running || !r.uifFlag) {
        // SN effectively set: the request is recorded in the PIR and
        // the notification suppressed until the receiver is eligible.
        ++stats_.suppressed;
        return;
    }

    TimeNs delay = cfg_.uintrRunning.sample(rng_);
    fault::TransportFault f = fault::onTransport(
        fault::Site::Uintr, sim_.now(), track(receiver));
    if (f.drop) {
        ++stats_.droppedNotifications;
        return;
    }
    r.on = true;
    std::uint64_t gen = r.generation;
    scheduleRunningDelivery(receiver, gen, delay + f.delay, false);
    if (f.duplicate)
        scheduleRunningDelivery(receiver, gen,
                                delay + f.delay + f.duplicateDelay,
                                true);
}

void
UintrUnit::scheduleRunningDelivery(int receiver, std::uint64_t gen,
                                   TimeNs delay, bool dup)
{
    sim_.after(delay, [this, receiver, gen, dup](TimeNs now) {
        Receiver &rr = rx(receiver);
        if (!rr.valid || rr.generation != gen)
            return;
        if (!dup)
            rr.on = false;
        if (rr.pir == 0) {
            // Duplicate (or raced) notification for an already-cleared
            // PIR: counted no-op, never a handler entry.
            ++stats_.redundant;
            return;
        }
        if (!rr.running || !rr.uifFlag || rr.blocked) {
            // The receiver lost eligibility while the notification was
            // in flight; the PIR keeps the request pending.
            ++stats_.spurious;
            // If it blocked meanwhile, the setBlocked-time notify saw
            // ON still set and bailed — without a retry here the PIR
            // would be stranded until the next send (missed wakeup).
            if (rr.blocked)
                notify(receiver);
            return;
        }
        ++stats_.deliveredRunning;
        noteDeliveredRunning(receiver, now);
        deliverNow(receiver, now);
    });
}

void
UintrUnit::scheduleBlockedWake(int receiver, std::uint64_t gen,
                               TimeNs delay, bool dup)
{
    sim_.after(delay, [this, receiver, gen, dup](TimeNs now) {
        Receiver &rr = rx(receiver);
        if (!rr.valid || rr.generation != gen)
            return;
        if (!dup)
            rr.on = false;
        if (rr.pir == 0 || (dup && !rr.blocked)) {
            // Duplicated wake after the PIR was served (or after the
            // receiver already resumed): counted no-op.
            ++stats_.redundant;
            return;
        }
        rr.blocked = false;
        rr.running = true;
        TimeNs lat = now - rr.pirPostedAt;
        obs::emit(obs::EventKind::UintrWake, track(receiver), now,
                  static_cast<std::uint64_t>(receiver), lat);
        if (rr.wake)
            rr.wake(now);
        if (!rr.uifFlag) {
            // Double-ineligible corner (blocked with UIF clear): the
            // ordinary interrupt still resumes the thread, but the
            // user interrupt must stay parked until STUI re-enables
            // delivery; entering the handler here would break the
            // CLUI critical section. setUif(true) recognises the PIR.
            ++stats_.suppressed;
            return;
        }
        ++stats_.deliveredBlocked;
        obs::emit(obs::EventKind::UintrDeliverBlocked,
                  track(receiver), now,
                  static_cast<std::uint64_t>(receiver), lat, rr.pir);
        obs::recordTimer("uintr.delivery_blocked_ns", lat);
        deliverNow(receiver, now);
    });
}

void
UintrUnit::armResend(int receiver, TimeNs posted_at, int attempt)
{
    Receiver &r = rx(receiver);
    std::uint64_t gen = r.generation;
    TimeNs backoff = kResendBaseNs << attempt;
    sim_.after(backoff, [this, receiver, gen, posted_at,
                         attempt](TimeNs now) {
        Receiver &rr = rx(receiver);
        if (!rr.valid || rr.generation != gen)
            return;
        if (rr.pir == 0 || rr.pirPostedAt != posted_at)
            return; // batch acknowledged (delivered or superseded)
        if (rr.on) {
            // A notification is in flight; keep watching this batch
            // without burning a retry.
            armResend(receiver, posted_at, attempt);
            return;
        }
        if (attempt >= kResendMaxAttempts) {
            ++stats_.resendsAbandoned;
            obs::addCount("fault.abandoned.uintr_resend");
            return;
        }
        ++stats_.resends;
        obs::addCount("fault.recovered.uintr_resend");
        obs::emit(obs::EventKind::FaultRecover, track(receiver), now,
                  static_cast<std::uint64_t>(fault::Site::Uintr),
                  static_cast<std::uint64_t>(attempt));
        notify(receiver);
        armResend(receiver, posted_at, attempt + 1);
    });
}

void
UintrUnit::noteDeliveredRunning(int receiver, TimeNs now)
{
    Receiver &r = rx(receiver);
    TimeNs lat = now - r.pirPostedAt;
    obs::emit(obs::EventKind::UintrDeliverRunning, track(receiver), now,
              static_cast<std::uint64_t>(receiver), lat, r.pir);
    obs::recordTimer("uintr.delivery_running_ns", lat);
}

void
UintrUnit::deliverNow(int receiver, TimeNs now)
{
    Receiver &r = rx(receiver);
    std::uint64_t vectors = r.pir;
    if (vectors == 0)
        return;
    r.pir = 0;
    // The CPU clears UIF on delivery; uiret() restores it.
    r.uifFlag = false;
    r.handler(now, vectors);
}

void
UintrUnit::scheduleRecognition(int receiver)
{
    std::uint64_t gen = rx(receiver).generation;
    sim_.after(cfg_.uintrRecognition, [this, receiver, gen](TimeNs t) {
        Receiver &rr = rx(receiver);
        if (!rr.valid || rr.generation != gen)
            return;
        if (rr.pir == 0) {
            // Another delivery path (duplicate, wake, or a racing
            // recognition) served the PIR first; counting this as a
            // delivery would corrupt the latency metrics.
            ++stats_.redundant;
            return;
        }
        if (rr.running && rr.uifFlag && !rr.blocked) {
            ++stats_.deliveredRunning;
            noteDeliveredRunning(receiver, t);
            deliverNow(receiver, t);
        }
    });
}

void
UintrUnit::uiret(int receiver)
{
    Receiver &r = rx(receiver);
    r.uifFlag = true;
    if (r.pir != 0 && r.running && !r.blocked && !r.on)
        scheduleRecognition(receiver);
}

void
UintrUnit::setRunning(int receiver, bool running)
{
    Receiver &r = rx(receiver);
    r.running = running;
    if (running) {
        r.blocked = false;
        if (r.pir != 0 && r.uifFlag && !r.on)
            scheduleRecognition(receiver);
    }
}

void
UintrUnit::setBlocked(int receiver, bool blocked)
{
    Receiver &r = rx(receiver);
    r.blocked = blocked;
    if (blocked) {
        r.running = false;
        if (r.pir != 0 && !r.on)
            notify(receiver); // blocked receivers are woken by sends
    } else {
        setRunning(receiver, true);
    }
}

void
UintrUnit::setUif(int receiver, bool uif)
{
    Receiver &r = rx(receiver);
    if (uif && !r.uifFlag) {
        uiret(receiver);
    } else {
        r.uifFlag = uif;
    }
}

bool
UintrUnit::running(int receiver) const
{
    return rx(receiver).running;
}

bool
UintrUnit::blocked(int receiver) const
{
    return rx(receiver).blocked;
}

bool
UintrUnit::uif(int receiver) const
{
    return rx(receiver).uifFlag;
}

std::uint64_t
UintrUnit::pending(int receiver) const
{
    return rx(receiver).pir;
}

} // namespace preempt::hw
