/**
 * @file
 * Calibration constants for every modelled hardware/kernel mechanism.
 *
 * Values come from the paper where it reports them (Table IV IPC
 * latencies; 3 us minimum LibUtimer time slice; ~60 us kernel-timer
 * granularity floor in Fig. 12; 1.2 W polling-core power) and from the
 * published Shinjuku/Libinger numbers otherwise. The sensitivity of
 * the headline results to these constants is explored by
 * bench/ablation_latency_sensitivity.
 */

#ifndef PREEMPT_HW_LATENCY_CONFIG_HH
#define PREEMPT_HW_LATENCY_CONFIG_HH

#include "common/time.hh"
#include "hw/jitter.hh"

namespace preempt::hw {

/** All tunable cost constants of the simulated platform. */
struct LatencyConfig
{
    // ----- CPU ------------------------------------------------------
    /** Fixed core frequency (paper: 1.7 GHz, turbo off). */
    double cpuGhz = kCpuGhz;

    // ----- UINTR (Table IV: uintrFd 0.734/0.512/0.698 us running,
    //              2.393/2.048/0.212 us blocked) ---------------------
    /** SENDUIPI issue cost on the sender core. */
    TimeNs senduipiCost = 55;
    /** Posting -> handler entry, receiver running with UIF set. */
    JitterSpec uintrRunning{512, 222, 698};
    /** Posting -> resume, receiver blocked in the kernel (ordinary
     *  interrupt unblocks it and the user interrupt is injected). */
    JitterSpec uintrBlocked{2048, 345, 212};
    /** Handler prologue + uiret epilogue around a delivery. */
    TimeNs uintrHandlerCost = 95;
    /** Recognition delay when UIF is re-enabled with pending PIR. */
    TimeNs uintrRecognition = 25;

    // ----- Kernel signals (Table IV: 15.325/3.584/3.478 us) ---------
    /** One-way kernel signal delivery, uncontended. */
    JitterSpec signalDelivery{3584, 11741, 3478};
    /** Signal-handler user-space trampoline (sigreturn etc.). */
    TimeNs signalHandlerCost = 550;
    /** Serialized kernel critical section per signal (sighand lock);
     *  the source of superlinear scaling in Fig. 11. */
    TimeNs signalLockHold = 2500;

    // ----- Other kernel IPC (Table IV) -------------------------------
    JitterSpec mqDelivery{8960, 1508, 2017};
    JitterSpec pipeDelivery{10240, 7521, 4304};
    JitterSpec eventfdDelivery{2816, 26872, 13612};

    // ----- Kernel basics ---------------------------------------------
    /** Syscall entry/exit. */
    TimeNs syscallCost = 450;
    /** Full kernel thread context switch. */
    TimeNs kernelCtxSwitch = 1800;
    /** timer_settime / timerfd_settime programming cost. */
    TimeNs timerProgramCost = 750;
    /** Effective kernel timer granularity floor (Fig. 12 shows the
     *  kernel timer cannot go below ~60 us). */
    TimeNs kernelTimerFloor = 60000;
    /** Kernel timer expiry jitter (scheduler + hrtimer slack). */
    JitterSpec kernelTimerJitter{0, 6000, 9000};

    // ----- User-level context management -----------------------------
    /** fcontext-style user context switch (save/restore regs). */
    TimeNs userCtxSwitch = 40;
    /** Scheduler decision cost per dispatch (queue ops, bookkeeping). */
    TimeNs dispatchCost = 120;
    /** fn_launch: context + stack allocation from the global pool. */
    TimeNs fnLaunchCost = 80;
    /** Idle worker's shared-memory queue poll latency. */
    TimeNs workerQueuePoll = 100;

    // ----- Shinjuku-style posted IPIs --------------------------------
    /** Sender-side write to the ring-3-mapped APIC. */
    TimeNs postedIpiSend = 90;
    /** Delivery + receiver-side trampoline into the runtime. */
    JitterSpec postedIpiDelivery{950, 380, 420};
    /** The APIC approach supports only a bounded number of logical
     *  cores (paper section I / VI). */
    int apicMaxTargets = 32;
    /** Shinjuku centralized-dispatcher handling cost per operation
     *  (admit / assign / requeue / IPI initiation). */
    TimeNs shinjukuDispatchCost = 300;
    /** Granularity at which Shinjuku's dispatcher loop re-checks
     *  worker elapsed time. */
    TimeNs shinjukuPollNs = 500;
    /** Receiver-side trap + trampoline into the Shinjuku runtime on a
     *  posted IPI (ring transition, interrupt frame, runtime entry). */
    TimeNs shinjukuTrapCost = 2000;
    /** Practical minimum quantum for Shinjuku (needs profiling; below
     *  ~5 us the IPI overhead dominates). */
    TimeNs shinjukuMinQuantum = 5000;
    /** Central run-queue lock hold time in Libinger-style runtimes
     *  (few threads, warm line). */
    TimeNs libingerLockHold = 150;
    /** Serialized cost per dequeue of one central queue shared by many
     *  cores: lock handoff + cache-line transfer bounce across
     *  sockets/cores (the contention the two-level design avoids). */
    TimeNs centralQueueLockHold = 500;

    // ----- LibUtimer --------------------------------------------------
    /** TSC poll loop iteration on the timer core (rdtsc + compare). */
    TimeNs utimerPollInterval = 150;
    /** Minimum supported time quantum (paper: 3 us). */
    TimeNs utimerMinQuantum = 3000;
    /** Deadline-array write (utimer_arm_deadline is one store). */
    TimeNs utimerArmCost = 15;

    // ----- Power ------------------------------------------------------
    /** Polling timer core with UMWAIT (paper: ~1.2 W). */
    double timerCoreWatts = 1.2;
    /** Each additional timer core (paper: "minimal"). */
    double extraTimerCoreWatts = 0.25;
    /** Busy worker core at the fixed frequency. */
    double workerCoreWatts = 5.5;

    /** Default calibration as used by all benches. */
    static LatencyConfig paperCalibrated() { return LatencyConfig{}; }
};

} // namespace preempt::hw

#endif // PREEMPT_HW_LATENCY_CONFIG_HH
