/**
 * @file
 * Latency jitter specification used by all hardware cost models.
 *
 * Measured interrupt/IPC latencies have a hard floor (the fast path)
 * plus a right-skewed tail. We model each as
 * floor + LogNormal(mean, std), with the log-normal moments matched to
 * the calibration target, so simulated min/avg/std land on the
 * measured values by construction.
 */

#ifndef PREEMPT_HW_JITTER_HH
#define PREEMPT_HW_JITTER_HH

#include <cmath>

#include "common/rng.hh"
#include "common/time.hh"

namespace preempt::hw {

/** floor + log-normal jitter with calibrated mean/std (nanoseconds). */
struct JitterSpec
{
    double floorNs = 0;  ///< minimum achievable latency
    double meanNs = 0;   ///< mean of the jitter above the floor
    double stdNs = 0;    ///< standard deviation of the jitter

    /** Expected value of a sample. */
    double expectedNs() const { return floorNs + meanNs; }

    /** Draw one latency sample. */
    TimeNs
    sample(Rng &rng) const
    {
        if (meanNs <= 0)
            return static_cast<TimeNs>(floorNs);
        double m = meanNs;
        double s = stdNs > 0 ? stdNs : meanNs * 0.25;
        double sigma2 = std::log(1.0 + (s * s) / (m * m));
        double mu = std::log(m) - 0.5 * sigma2;
        double sigma = std::sqrt(sigma2);
        // Box-Muller normal draw.
        double u1 = 1.0 - rng.uniform();
        double u2 = rng.uniform();
        double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
        double v = floorNs + std::exp(mu + sigma * z);
        return v <= 0 ? 0 : static_cast<TimeNs>(v + 0.5);
    }
};

} // namespace preempt::hw

#endif // PREEMPT_HW_JITTER_HH
