#include "preemptible/stack_pool.hh"

#include <sys/mman.h>
#include <unistd.h>

#include "common/logging.hh"

namespace preempt::runtime {

namespace {

std::size_t
pageSize()
{
    static const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return page;
}

std::size_t
roundToPages(std::size_t bytes)
{
    std::size_t page = pageSize();
    return (bytes + page - 1) / page * page;
}

} // namespace

StackPool::StackPool(std::size_t stack_size, bool guard)
    : stackSize_(roundToPages(stack_size)), guard_(guard), allocated_(0)
{
    fatal_if(stack_size == 0, "stack size must be > 0");
}

StackPool::~StackPool()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &s : free_)
        unmap(s);
    free_.clear();
}

Stack
StackPool::map()
{
    std::size_t guard_bytes = guard_ ? pageSize() : 0;
    std::size_t total = stackSize_ + guard_bytes;
    void *mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    fatal_if(mem == MAP_FAILED, "mmap of a %zu-byte stack failed", total);
    if (guard_) {
        int rc = ::mprotect(mem, guard_bytes, PROT_NONE);
        fatal_if(rc != 0, "mprotect of stack guard page failed");
    }
    Stack s;
    s.base_ = mem;
    s.top_ = static_cast<char *>(mem) + total;
    s.usable_ = stackSize_;
    s.mapped_ = total;
    return s;
}

void
StackPool::unmap(Stack &stack)
{
    if (stack.base_) {
        ::munmap(stack.base_, stack.mapped_);
        stack.base_ = nullptr;
    }
}

Stack
StackPool::acquire()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!free_.empty()) {
            Stack s = free_.back();
            free_.pop_back();
            return s;
        }
        ++allocated_;
    }
    return map();
}

void
StackPool::release(Stack stack)
{
    panic_if(!stack.valid(), "releasing an invalid stack");
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(stack);
}

std::size_t
StackPool::freeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
}

} // namespace preempt::runtime

