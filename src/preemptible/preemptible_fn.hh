/**
 * @file
 * The paper's adaptive user-controlled API (section IV-C):
 *
 *   fn_launch    create a preemptible function and run it immediately;
 *                control returns when it completes or its time slice
 *                expires.
 *   fn_resume    continue a preempted function under a new time slice.
 *   fn_completed check whether a function finished before its timeout.
 *
 * A preemptible function runs on its own pooled stack via fcontext.
 * Preemption is delivered by LibUtimer: the worker arms its deadline
 * slot before switching into the function; when the deadline passes,
 * the timer thread interrupts the worker, whose handler
 * context-switches back to the scheduler, exactly as a UINTR handler
 * would on Sapphire Rapids.
 *
 * Worker threads must call workerInit() once (after utimer_init) and
 * workerShutdown() before exiting.
 */

#ifndef PREEMPT_PREEMPTIBLE_PREEMPTIBLE_FN_HH
#define PREEMPT_PREEMPTIBLE_PREEMPTIBLE_FN_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>

#include "common/time.hh"
#include "preemptible/fcontext.hh"
#include "preemptible/stack_pool.hh"
#include "preemptible/utimer.hh"

namespace preempt::runtime {

class PreemptibleFn;

/** Outcome of fn_launch / fn_resume. */
enum class FnStatus
{
    Completed, ///< the function ran to completion
    Preempted, ///< the time slice expired; resume later
    Yielded,   ///< the function yielded voluntarily
};

/** State of a preemptible function (the paper's Fn = Context +
 *  Deadline). */
enum class FnState
{
    Fresh,     ///< never started
    Running,   ///< currently on some worker
    Preempted, ///< suspended with saved context
    Completed, ///< finished; context returned to the pool
    Cancelled, ///< discarded before completion (fn_cancel)
};

namespace detail {
/** Internal: shared implementation of fn_launch/fn_resume. */
FnStatus runFn(PreemptibleFn &fn, TimeNs timeout, bool fresh);
/** Internal: context entry point. */
void fnEntry(fcontext::Transfer t);
} // namespace detail

/** A request running as a lightweight preemptible function. */
class PreemptibleFn
{
  public:
    /** @param body the request work. */
    explicit PreemptibleFn(std::function<void()> body);
    ~PreemptibleFn();

    PreemptibleFn(const PreemptibleFn &) = delete;
    PreemptibleFn &operator=(const PreemptibleFn &) = delete;

    FnState state() const { return state_; }

    /** Times this function was preempted. */
    int preemptions() const { return preemptions_; }

    /** True once the body returned and the completion path owns the
     *  context. The preemption handler declines to context-switch a
     *  finishing function: the completion sequence reads thread-local
     *  worker state, and a migration between those reads would leave
     *  it operating on the old worker — including jumping into that
     *  worker's live scheduler context. Declining is also the right
     *  semantics: the function completes within nanoseconds, so the
     *  slice expiry is moot. */
    bool finishing() const
    {
        return finishing_.load(std::memory_order_relaxed);
    }

    /** Rebind a completed/cancelled function to new work. */
    void reset(std::function<void()> body);

  private:
    friend FnStatus detail::runFn(PreemptibleFn &fn, TimeNs timeout,
                                  bool fresh);
    friend void detail::fnEntry(fcontext::Transfer t);
    friend void fn_cancel(PreemptibleFn &fn);

    std::function<void()> body_;

    /** Set by fnEntry the moment body_ returns, before any
     *  thread-local access on the completion path (the PreemptibleFn
     *  address is stable across migration, unlike worker TLS). Read
     *  only from the preemption handler on the thread currently
     *  running the function, hence relaxed. */
    std::atomic<bool> finishing_{false};

    fcontext::Context ctx_ = nullptr;
    Stack stack_;
    FnState state_ = FnState::Fresh;
    int preemptions_ = 0;

    /** TSan fiber handle for this context (null outside TSan builds).
     *  Keeps the sanitizer's per-context shadow state migrating with
     *  the function across workers. */
    void *tsanFiber_ = nullptr;
};

/** Per-worker state shared with the preemption handler. */
class WorkerContext
{
  public:
    /** Scheduler-side context while a function runs. Only the owning
     *  OS thread ever touches it (it lives in that thread's TLS), but
     *  writes come from different execution contexts — fnEntry, the
     *  preemption handler, fn_yield — which TSan models as distinct
     *  fiber threads; relaxed atomic accesses tell it the serialization
     *  is intentional without adding fences. */
    std::atomic<fcontext::Context> schedulerCtx{nullptr};

    /** Function currently executing on this worker. */
    PreemptibleFn *current = nullptr;

    /** True while the worker executes a preemptible region; the
     *  handler ignores signals outside it. Relaxed atomic rather than
     *  volatile sig_atomic_t: equally async-signal-safe, and race-free
     *  under TSan's fiber model (same rationale as schedulerCtx). */
    std::atomic<sig_atomic_t> inRegion{0};

    /** This worker's LibUtimer deadline slot. */
    DeadlineSlot *slot = nullptr;

    /** Timer the slot was registered with. */
    UTimer *timer = nullptr;

    /** Diagnostics. */
    std::uint64_t preemptions = 0;
    std::uint64_t completions = 0;
    std::uint64_t staleSignals = 0;

    /** TSan fiber handle of the scheduler context (null outside TSan
     *  builds). */
    void *tsanFiber = nullptr;
};

/**
 * Initialise the calling thread as a worker: registers the LibUtimer
 * deadline slot and installs the preemption signal handler (once per
 * process).
 *
 * @param timer the timer instance to register with.
 * @return the worker context (thread-local storage).
 */
WorkerContext &workerInit(UTimer &timer);

/** Tear down the calling worker thread. */
void workerShutdown();

/** The calling thread's worker context (null when not a worker). */
WorkerContext *currentWorker();

/**
 * fn_launch: start a preemptible function with the given time slice.
 * Must be called from a worker thread.
 *
 * @param fn      a Fresh (or reset) function
 * @param timeout time slice; kTimeNever or 0 disables preemption
 */
FnStatus fn_launch(PreemptibleFn &fn, TimeNs timeout);

/** fn_resume: continue a Preempted/Yielded function. */
FnStatus fn_resume(PreemptibleFn &fn, TimeNs timeout);

/** fn_completed: true when the function finished. */
inline bool
fn_completed(const PreemptibleFn &fn)
{
    return fn.state() == FnState::Completed;
}

/** Cooperative yield from inside a preemptible function. */
void fn_yield();

/**
 * fn_cancel: discard a Preempted function without running it further
 * (the section III-B deadline abstraction: release resources when the
 * SLO is already violated). The saved stack is recycled WITHOUT
 * unwinding — objects alive on the function's stack are abandoned, so
 * cancellable request bodies must keep owning state off-stack (as the
 * paper's request contexts do).
 */
void fn_cancel(PreemptibleFn &fn);

/** The stack pool backing all preemptible functions. */
StackPool &fnStackPool();

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_PREEMPTIBLE_FN_HH
