/**
 * @file
 * Bounded lock-free work-stealing deque (Chase-Lev) for the real
 * runtime's per-worker ready queues.
 *
 * One owner thread pushes and pops at the bottom (LIFO — the newest
 * task is the cache-warm one); any number of thief threads steal from
 * the top (FIFO — the oldest task is the one most worth rebalancing).
 * The buffer is fixed-capacity: push reports failure instead of
 * growing, which is the backpressure contract the runtime's submit
 * path already exposes.
 *
 * Memory ordering follows the C11 formulation of Chase-Lev from
 * Lê/Pop/Cohen/Nardelli, "Correct and Efficient Work-Stealing for
 * Weak Memory Models" (PPoPP'13): the owner's pop uses a seq_cst
 * fence against concurrent steals; a steal claims its element with a
 * seq_cst compare_exchange on top.
 *
 * Batched stealing (stealBatch) is a loop of single-element steals,
 * NOT one CAS of top += n: between reading elements [top, top+n) and
 * publishing the claim, the owner may pop those same slots from the
 * bottom without ever touching top, so a multi-element claim can
 * double-run tasks. One CAS per element keeps each claim mutually
 * exclusive with the owner's bottom==top race path.
 */

#ifndef PREEMPT_PREEMPTIBLE_STEAL_DEQUE_HH
#define PREEMPT_PREEMPTIBLE_STEAL_DEQUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "common/spsc_ring.hh"

namespace preempt::runtime {

/** Outcome of a single steal attempt (for steal.attempt/hit/abort
 *  accounting in the runtime). */
enum class StealResult
{
    Ok,    ///< one element claimed
    Empty, ///< nothing to take
    Abort, ///< lost the CAS race to the owner or another thief
};

template <typename T>
class StealDeque
{
    // Elements are relaxed atomics: a thief speculatively reads a slot
    // before claiming it with the CAS on top, and that read may overlap
    // an owner push into the same slot after the buffer wrapped. The
    // torn value is discarded when the CAS fails, but the access itself
    // must be atomic to be race-free.
    static_assert(std::is_trivially_copyable_v<T>,
                  "steal deque elements are copied through relaxed "
                  "atomics");

  public:
    /** @param capacity_pow2 capacity; rounded up to a power of two. */
    explicit StealDeque(std::size_t capacity_pow2)
    {
        std::size_t cap = 1;
        while (cap < capacity_pow2)
            cap <<= 1;
        buf_ = std::vector<std::atomic<T>>(cap);
        mask_ = cap - 1;
    }

    StealDeque(const StealDeque &) = delete;
    StealDeque &operator=(const StealDeque &) = delete;

    /** Owner only: append at the bottom. Returns false when full. */
    bool
    push(T value)
    {
        std::int64_t b = bottom_.load(std::memory_order_relaxed);
        std::int64_t t = top_.load(std::memory_order_acquire);
        if (b - t > static_cast<std::int64_t>(mask_))
            return false; // full
        buf_[static_cast<std::size_t>(b) & mask_].store(
            value, std::memory_order_relaxed);
        // Publish the element before publishing the new bottom.
        bottom_.store(b + 1, std::memory_order_release);
        return true;
    }

    /** Owner only: take the newest element (LIFO). */
    bool
    pop(T &out)
    {
        std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_relaxed);
        // The store to bottom must be visible to thieves before we read
        // top, or a thief and the owner could both claim the last slot.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_relaxed);
        if (t > b) {
            // Already empty; restore.
            bottom_.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = buf_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
        if (t == b) {
            // Last element: race the thieves for it via top.
            if (!top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed)) {
                // A thief won; the deque is empty.
                bottom_.store(b + 1, std::memory_order_relaxed);
                return false;
            }
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return true;
    }

    /** Thief: claim the oldest element (FIFO). */
    StealResult
    steal(T &out)
    {
        std::int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return StealResult::Empty;
        T value = buf_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return StealResult::Abort;
        out = value;
        return StealResult::Ok;
    }

    /**
     * Thief: claim up to max_n of the oldest elements, oldest first.
     * Stops at the first Empty or Abort so a contended victim is left
     * alone quickly. @return elements written to out[0..n).
     */
    std::size_t
    stealBatch(T *out, std::size_t max_n, StealResult *last = nullptr)
    {
        std::size_t n = 0;
        StealResult r = StealResult::Empty;
        while (n < max_n) {
            r = steal(out[n]);
            if (r != StealResult::Ok)
                break;
            ++n;
        }
        if (last)
            *last = r;
        return n;
    }

    /** Approximate occupancy (exact only from the owner thread). */
    std::size_t
    size() const
    {
        std::int64_t b = bottom_.load(std::memory_order_acquire);
        std::int64_t t = top_.load(std::memory_order_acquire);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<std::atomic<T>> buf_;
    std::size_t mask_;
    alignas(kCacheLine) std::atomic<std::int64_t> top_{0};
    alignas(kCacheLine) std::atomic<std::int64_t> bottom_{0};
};

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_STEAL_DEQUE_HH
