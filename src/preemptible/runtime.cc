#include "preemptible/runtime.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"

namespace preempt::runtime {

PreemptibleRuntime::PreemptibleRuntime(Options options)
    : options_(std::move(options)), quantum_(options_.quantum)
{
    fatal_if(options_.nWorkers <= 0, "runtime needs at least one worker");
    timer_.init(options_.timer);
    startedAt_ = hostNowNs();
    for (int i = 0; i < options_.nWorkers; ++i) {
        queues_.push_back(std::make_unique<SpscRing<TaskRecord *>>(
            options_.queueCapacity));
    }
    for (int i = 0; i < options_.nWorkers; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

PreemptibleRuntime::~PreemptibleRuntime()
{
    shutdown();
}

bool
PreemptibleRuntime::submit(std::function<void()> body, int cls)
{
    fatal_if(!body, "submitting an empty task");
    fatal_if(stopping_.load(), "submit after shutdown");
    auto task = std::make_unique<TaskRecord>();
    task->body = std::move(body);
    task->cls = cls;
    task->submitNs = hostNowNs();

    std::uint64_t slot = rrNext_.fetch_add(1, std::memory_order_relaxed);
    task->id = slot;
    std::size_t target = slot % queues_.size();
    obs::emit(obs::EventKind::Dispatch,
              static_cast<std::uint32_t>(target), task->submitNs,
              task->id, static_cast<std::uint64_t>(cls));
    // SpscRing is single-producer; serialise multi-threaded submitters.
    static std::mutex submit_mutex;
    std::lock_guard<std::mutex> lock(submit_mutex);
    if (!queues_[target]->push(task.get()))
        return false;
    task.release(); // ownership passed to the worker
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
PreemptibleRuntime::workerMain(int index)
{
    WorkerContext &ctx = workerInit(timer_);
    auto &queue = *queues_[static_cast<std::size_t>(index)];

    for (;;) {
        // Policy #1: new tasks take priority over preempted ones.
        TaskRecord *raw = nullptr;
        if (queue.pop(raw)) {
            runTask(index, std::unique_ptr<TaskRecord>(raw));
            continue;
        }
        std::unique_ptr<TaskRecord> parked;
        {
            std::lock_guard<std::mutex> lock(longMutex_);
            if (!longQueue_.empty()) {
                parked = std::move(longQueue_.front());
                longQueue_.pop_front();
            }
        }
        if (parked) {
            runTask(index, std::move(parked));
            continue;
        }
        if (stopping_.load(std::memory_order_acquire) &&
            inFlight_.load(std::memory_order_acquire) == 0) {
            break;
        }
        if (options_.idleNap) {
            timespec ts{0, static_cast<long>(options_.idleNap)};
            ::nanosleep(&ts, nullptr);
        }
    }

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        staleSignals_ += ctx.staleSignals;
    }
    workerShutdown();
}

void
PreemptibleRuntime::runTask(int worker, std::unique_ptr<TaskRecord> task)
{
    FnStatus status;
    TimeNs slice = quantum_.load(std::memory_order_relaxed);
    std::uint32_t track = static_cast<std::uint32_t>(worker);
    bool fresh = !task->fn;
    obs::emit(fresh ? obs::EventKind::Launch : obs::EventKind::Resume,
              track, hostNowNs(), task->id, slice);
    if (fresh) {
        task->fn = std::make_unique<PreemptibleFn>(task->body);
        status = fn_launch(*task->fn, slice);
    } else {
        status = fn_resume(*task->fn, slice);
    }

    if (status == FnStatus::Completed) {
        task->finishNs = hostNowNs();
        TimeNs sojourn = task->finishNs - task->submitNs;
        obs::emit(obs::EventKind::Complete, track, task->finishNs,
                  task->id, sojourn,
                  static_cast<std::uint64_t>(task->cls));
        obs::recordTimerPerCore("runtime.sojourn_ns",
                                static_cast<unsigned>(worker), sojourn);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            (task->cls == 0 ? lcLatency_ : beLatency_).record(sojourn);
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
        inFlight_.fetch_sub(1, std::memory_order_release);
        return;
    }

    // Preempted or yielded: park on the shared long queue.
    preemptions_.fetch_add(1, std::memory_order_relaxed);
    obs::emit(obs::EventKind::Preempt, track, hostNowNs(), task->id,
              slice);
    obs::addCount("runtime.preemptions");
    std::lock_guard<std::mutex> lock(longMutex_);
    longQueue_.push_back(std::move(task));
}

void
PreemptibleRuntime::quiesce()
{
    while (inFlight_.load(std::memory_order_acquire) != 0) {
        timespec ts{0, 100000};
        ::nanosleep(&ts, nullptr);
    }
}

void
PreemptibleRuntime::shutdown()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    for (auto &t : workers_) {
        if (t.joinable())
            t.join();
    }
    timer_.shutdown();
}

RuntimeStats
PreemptibleRuntime::stats() const
{
    RuntimeStats s;
    s.submitted = submitted_.load();
    s.completed = completed_.load();
    s.preemptions = preemptions_.load();
    std::lock_guard<std::mutex> lock(statsMutex_);
    s.staleSignals = staleSignals_;
    s.lcLatency = lcLatency_;
    s.beLatency = beLatency_;
    return s;
}

double
PreemptibleRuntime::throughputRps() const
{
    TimeNs elapsed = hostNowNs() - startedAt_;
    if (elapsed == 0)
        return 0;
    return static_cast<double>(completed_.load()) / nsToSec(elapsed);
}

std::size_t
PreemptibleRuntime::longQueueLen() const
{
    std::lock_guard<std::mutex> lock(longMutex_);
    return longQueue_.size();
}

} // namespace preempt::runtime
