#include "preemptible/runtime.hh"

#include <array>
#include <ctime>
#include <string>

#include "common/logging.hh"
#include "control/admission.hh"
#include "obs/metrics.hh"
#include "obs/spans.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"

namespace preempt::runtime {

namespace {

/** Hard cap on a steal round so spoils fit a stack buffer. */
constexpr std::size_t kMaxStealBatch = 64;

/** Process-wide task id counter: colocated runtimes (one per tenant)
 *  share one id space so a span collector keyed by (epoch, id) never
 *  sees two tenants' tasks collide. */
std::atomic<std::uint64_t> g_nextTaskId{0};

} // namespace

PreemptibleRuntime::PreemptibleRuntime(Options options)
    : options_(std::move(options)), quantum_(options_.quantum)
{
    fatal_if(options_.nWorkers <= 0, "runtime needs at least one worker");
    fatal_if(options_.stealBatch == 0 ||
                 options_.stealBatch > kMaxStealBatch,
             "stealBatch must be in [1,%zu]", kMaxStealBatch);
    timer_.init(options_.timer);
    startedAt_ = hostNowNs();

    // The shard fire path touches only the task's atomic flag and
    // counters: the task stays alive because every deletion first
    // cancels the pending deadline under the same shard mutex the
    // fire callback runs under.
    auto onFire = [this](std::uint64_t cookie, TimeNs when,
                         TimeNs now) {
        (void)when;
        (void)now;
        auto *task = reinterpret_cast<TaskRecord *>(cookie);
        task->deadlineExpired.store(true, std::memory_order_release);
        deadlineFires_.fetch_add(1, std::memory_order_relaxed);
        obs::addCount("runtime.deadline.fires");
    };
    for (int i = 0; i < options_.nWorkers; ++i) {
        workers_.push_back(std::make_unique<WorkerState>(
            options_.queueCapacity, options_.seed,
            static_cast<std::uint64_t>(i)));
        WorkerState &w = *workers_.back();
        w.shard = std::make_unique<WheelShard>(
            options_.wheelTick, options_.wheelSlots,
            options_.wheelLevels, onFire);
        w.shard->primeTo(hostNowNs());
        w.shard->depthGauge =
            "runtime.wheel.depth/shard" + std::to_string(i);
        timer_.registerWheel(w.shard.get());
    }
    for (int i = 0; i < options_.nWorkers; ++i)
        workers_[static_cast<std::size_t>(i)]->thread =
            std::thread([this, i] { workerMain(i); });

    samplerId_ = obs::registerTelemetrySampler(
        [this](obs::MetricsRegistry &r) { sampleTelemetry(r); });
}

PreemptibleRuntime::~PreemptibleRuntime()
{
    shutdown();
}

bool
PreemptibleRuntime::submit(std::function<void()> body, int cls)
{
    std::uint64_t slot = rrNext_.fetch_add(1, std::memory_order_relaxed);
    return submitTo(static_cast<int>(slot % workers_.size()),
                    std::move(body), cls, 0);
}

bool
PreemptibleRuntime::submitTo(int worker, std::function<void()> body,
                             int cls, TimeNs deadlineIn)
{
    fatal_if(!body, "submitting an empty task");
    fatal_if(stopping_.load(), "submit after shutdown");
    fatal_if(worker < 0 || worker >= options_.nWorkers,
             "submitTo target out of range");
    if (options_.admission &&
        !options_.admission->decide(options_.tenant, cls)) {
        // Policy rejection: first-class and before any task state
        // exists — no TaskSubmit span is opened, so span accounting
        // only ever sees admitted work.
        rejectedPolicy_.fetch_add(1, std::memory_order_relaxed);
        obs::emit(obs::EventKind::TaskReject,
                  static_cast<std::uint32_t>(worker), hostNowNs(),
                  g_nextTaskId.fetch_add(1, std::memory_order_relaxed),
                  static_cast<std::uint64_t>(cls), options_.tenant);
        return false;
    }
    WorkerState &w = *workers_[static_cast<std::size_t>(worker)];
    auto task = std::make_unique<TaskRecord>();
    task->body = std::move(body);
    task->cls = cls;
    task->submitNs = hostNowNs();
    task->id = g_nextTaskId.fetch_add(1, std::memory_order_relaxed);
    task->owner = static_cast<std::uint32_t>(worker);
    // Span anchor: end-to-end latency is measured from this record,
    // so span total == the sojourn payload on Complete, exactly.
    obs::emitSpan(obs::EventKind::TaskSubmit,
                  static_cast<std::uint32_t>(worker), task->submitNs,
                  task->id, static_cast<std::uint64_t>(cls),
                  options_.tenant);
    if (deadlineIn != 0) {
        // Arm before publishing: once the task is in the inbox another
        // worker may complete it (and cancel the deadline) right away.
        task->deadlineAt = task->submitNs + deadlineIn;
        task->deadlineId = w.shard->schedule(
            task->deadlineAt,
            reinterpret_cast<std::uint64_t>(task.get()));
        obs::emit(obs::EventKind::TimerArm,
                  static_cast<std::uint32_t>(worker), task->submitNs,
                  task->id, task->deadlineAt);
    }
    obs::emit(obs::EventKind::Dispatch,
              static_cast<std::uint32_t>(worker), task->submitNs,
              task->id, static_cast<std::uint64_t>(cls));
    bool pushed;
    {
        // SpscRing is single-producer; serialise submitters per worker.
        std::lock_guard<std::mutex> lock(w.submitMutex);
        pushed = w.inbox.push(task.get());
    }
    if (!pushed) {
        cancelDeadline(task.get()); // backpressure: revoke and reject
        // Close the span opened by TaskSubmit above.
        obs::emitSpan(obs::EventKind::CancelRequest,
                      static_cast<std::uint32_t>(worker), hostNowNs(),
                      task->id);
        // Full-inbox backpressure is observable, never silent: a
        // first-class reject record plus a counter callers can poll.
        rejectedFull_.fetch_add(1, std::memory_order_relaxed);
        obs::addCount("runtime.submit.rejected_full");
        obs::emit(obs::EventKind::TaskReject,
                  static_cast<std::uint32_t>(worker), hostNowNs(),
                  task->id, static_cast<std::uint64_t>(cls),
                  options_.tenant);
        return false;
    }
    task.release(); // ownership passed to the worker
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::size_t
PreemptibleRuntime::drainInbox(int index, WorkerState &w)
{
    std::size_t moved = 0;
    TaskRecord *raw = nullptr;
    while (w.inbox.pop(raw)) {
        ++moved;
        if (!w.ready.push(raw)) {
            // Deque full (stolen backlog + burst): run it right now
            // rather than lose it.
            runTask(index, std::unique_ptr<TaskRecord>(raw));
        }
    }
    return moved;
}

TaskRecord *
PreemptibleRuntime::trySteal(int self)
{
    const int n = options_.nWorkers;
    if (!options_.stealing || n < 2)
        return nullptr;
    WorkerState &me = *workers_[static_cast<std::size_t>(self)];

    // Draw a worker index other than self from this worker's stream.
    auto pick = [&]() {
        std::uint32_t r =
            me.rng.next() % static_cast<std::uint32_t>(n - 1);
        int v = static_cast<int>(r);
        return v >= self ? v + 1 : v;
    };

    std::array<TaskRecord *, kMaxStealBatch> spoils;
    for (int round = 0; round < options_.stealRounds; ++round) {
        stealAttempts_.fetch_add(1, std::memory_order_relaxed);
        obs::addCount("runtime.steal.attempt");

        // Two-choice: probe two distinct victims, raid the longer one.
        int v1 = pick();
        int victim = v1;
        if (n > 2) {
            std::uint32_t r =
                me.rng.next() % static_cast<std::uint32_t>(n - 2);
            int v2 = v1;
            for (int i = 0, seen = 0; i < n; ++i) {
                if (i == self || i == v1)
                    continue;
                if (seen++ == static_cast<int>(r)) {
                    v2 = i;
                    break;
                }
            }
            std::size_t s1 =
                workers_[static_cast<std::size_t>(v1)]->ready.size();
            std::size_t s2 =
                workers_[static_cast<std::size_t>(v2)]->ready.size();
            victim = s1 >= s2 ? v1 : v2;
        }

        StealResult last = StealResult::Empty;
        std::size_t got =
            workers_[static_cast<std::size_t>(victim)]->ready.stealBatch(
                spoils.data(), options_.stealBatch, &last);
        if (last == StealResult::Abort) {
            stealAborts_.fetch_add(1, std::memory_order_relaxed);
            obs::addCount("runtime.steal.abort");
        }
        if (got == 0)
            continue;
        stealHits_.fetch_add(got, std::memory_order_relaxed);
        obs::addCount("runtime.steal.hit", got);
        obs::emit(obs::EventKind::Steal,
                  static_cast<std::uint32_t>(self), hostNowNs(), got,
                  static_cast<std::uint64_t>(victim));
        for (std::size_t i = 0; i < got; ++i)
            migrateTask(spoils[i], self);
        // Keep the oldest (spoils[0]) to run now; stage the rest so
        // LIFO pops still see them oldest-first.
        for (std::size_t i = got; i > 1; --i) {
            if (!me.ready.push(spoils[i - 1]))
                runTask(self, std::unique_ptr<TaskRecord>(spoils[i - 1]));
        }
        return spoils[0];
    }
    return nullptr;
}

void
PreemptibleRuntime::migrateTask(TaskRecord *task, int to)
{
    int from = static_cast<int>(task->owner);
    if (from == to)
        return;
    migrations_.fetch_add(1, std::memory_order_relaxed);
    obs::addCount("runtime.migrations");
    obs::emitSpan(obs::EventKind::TaskMigrate,
                  static_cast<std::uint32_t>(to), hostNowNs(), task->id,
                  static_cast<std::uint64_t>(from),
                  static_cast<std::uint64_t>(to));
    if (task->deadlineId != 0) {
        // Move the pending deadline to the adopting worker's shard.
        // cancel() false means the fire callback already ran (fully,
        // under the shard mutex) — nothing left to move.
        WheelShard &fromShard =
            *workers_[static_cast<std::size_t>(from)]->shard;
        if (fromShard.cancel(task->deadlineId)) {
            task->deadlineId =
                workers_[static_cast<std::size_t>(to)]->shard->schedule(
                    task->deadlineAt,
                    reinterpret_cast<std::uint64_t>(task));
        } else {
            task->deadlineId = 0;
        }
    }
    task->owner = static_cast<std::uint32_t>(to);
}

void
PreemptibleRuntime::cancelDeadline(TaskRecord *task)
{
    if (task->deadlineId == 0)
        return;
    workers_[task->owner]->shard->cancel(task->deadlineId);
    task->deadlineId = 0;
}

bool
PreemptibleRuntime::deadlineHopeless(const TaskRecord *task) const
{
    // Trust the wheel's verdict, but also consult the wall clock
    // directly: on an oversubscribed host the timer thread may be
    // starved past a deadline it has not yet marked.
    if (task->deadlineExpired.load(std::memory_order_acquire))
        return true;
    return task->deadlineAt != 0 && hostNowNs() >= task->deadlineAt;
}

void
PreemptibleRuntime::dropTask(int worker, std::unique_ptr<TaskRecord> task)
{
    cancelDeadline(task.get());
    expiredDrops_.fetch_add(1, std::memory_order_relaxed);
    obs::addCount("runtime.expired_drops");
    TimeNs now = hostNowNs();
    obs::emitSpan(obs::EventKind::CancelRequest,
                  static_cast<std::uint32_t>(worker), now, task->id,
                  now - task->submitNs);
    inFlight_.fetch_sub(1, std::memory_order_release);
}

void
PreemptibleRuntime::workerMain(int index)
{
    WorkerContext &ctx = workerInit(timer_);
    WorkerState &w = *workers_[static_cast<std::size_t>(index)];

    for (;;) {
        // Policy #1: new tasks take priority over preempted ones.
        TaskRecord *raw = nullptr;
        if (w.ready.pop(raw)) {
            runTask(index, std::unique_ptr<TaskRecord>(raw));
            continue;
        }
        if (drainInbox(index, w) > 0)
            continue;
        std::unique_ptr<TaskRecord> parked;
        {
            std::lock_guard<std::mutex> lock(longMutex_);
            if (!longQueue_.empty()) {
                parked = std::move(longQueue_.front());
                longQueue_.pop_front();
            }
        }
        if (parked) {
            migrateTask(parked.get(), index);
            runTask(index, std::move(parked));
            continue;
        }
        // Steal before napping: placement skew must not idle us while
        // a peer drowns.
        if (TaskRecord *stolen = trySteal(index)) {
            runTask(index, std::unique_ptr<TaskRecord>(stolen));
            continue;
        }
        if (stopping_.load(std::memory_order_acquire) &&
            inFlight_.load(std::memory_order_acquire) == 0) {
            break;
        }
        if (options_.idleNap) {
            timespec ts{0, static_cast<long>(options_.idleNap)};
            ::nanosleep(&ts, nullptr);
        }
    }

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        staleSignals_ += ctx.staleSignals;
    }
    workerShutdown();
}

void
PreemptibleRuntime::runTask(int worker, std::unique_ptr<TaskRecord> task)
{
    FnStatus status;
    TimeNs slice = quantum_.load(std::memory_order_relaxed);
    std::uint32_t track = static_cast<std::uint32_t>(worker);
    WorkerState &w = *workers_[static_cast<std::size_t>(worker)];
    bool fresh = !task->fn;
    if (options_.dropExpired && fresh && deadlineHopeless(task.get())) {
        // SLO already hopeless: never launch (section III-B).
        dropTask(worker, std::move(task));
        return;
    }
    // a1 = the armed quantum: span builders attribute segment time
    // past it to timer-fire lag rather than running time.
    obs::emitSpan(fresh ? obs::EventKind::Launch
                        : obs::EventKind::Resume,
                  track, hostNowNs(), task->id, 0, slice);
    w.currentTask.store(static_cast<std::int64_t>(task->id),
                        std::memory_order_relaxed);
    if (fresh) {
        task->fn = std::make_unique<PreemptibleFn>(task->body);
        status = fn_launch(*task->fn, slice);
    } else {
        status = fn_resume(*task->fn, slice);
    }
    w.currentTask.store(-1, std::memory_order_relaxed);

    if (status == FnStatus::Completed) {
        cancelDeadline(task.get());
        task->finishNs = hostNowNs();
        TimeNs sojourn = task->finishNs - task->submitNs;
        obs::emitSpan(obs::EventKind::Complete, track, task->finishNs,
                      task->id, sojourn,
                      static_cast<std::uint64_t>(task->cls));
        obs::recordTimerPerCore("runtime.sojourn_ns",
                                static_cast<unsigned>(worker), sojourn);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            (task->cls == 0 ? lcLatency_ : beLatency_).record(sojourn);
        }
        completed_.fetch_add(1, std::memory_order_relaxed);
        inFlight_.fetch_sub(1, std::memory_order_release);
        return;
    }

    // Preempted or yielded.
    preemptions_.fetch_add(1, std::memory_order_relaxed);
    TimeNs preemptNs = hostNowNs();
    w.lastPreemptNs.store(preemptNs, std::memory_order_relaxed);
    obs::emitSpan(obs::EventKind::Preempt, track, preemptNs, task->id,
                  slice);
    obs::addCount("runtime.preemptions");
    if (options_.dropExpired && deadlineHopeless(task.get())) {
        // Expired mid-run: release the stack instead of finishing.
        fn_cancel(*task->fn);
        dropTask(worker, std::move(task));
        return;
    }
    // Park on the shared long queue.
    std::lock_guard<std::mutex> lock(longMutex_);
    longQueue_.push_back(std::move(task));
}

void
PreemptibleRuntime::quiesce()
{
    while (inFlight_.load(std::memory_order_acquire) != 0) {
        timespec ts{0, 100000};
        ::nanosleep(&ts, nullptr);
    }
}

void
PreemptibleRuntime::shutdown()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    // Unregister first: returns only after any in-flight sampler pass
    // finished, so teardown never races a telemetry read.
    obs::unregisterTelemetrySampler(samplerId_);
    samplerId_ = 0;
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
    }
    // Detach the wheel shards before stopping the timer so nothing
    // advances them once the runtime starts tearing down.
    for (auto &w : workers_)
        timer_.unregisterWheel(w->shard.get());
    timer_.shutdown();
}

RuntimeStats
PreemptibleRuntime::stats() const
{
    RuntimeStats s;
    s.submitted = submitted_.load();
    s.completed = completed_.load();
    s.rejectedFull = rejectedFull_.load();
    s.rejectedPolicy = rejectedPolicy_.load();
    s.preemptions = preemptions_.load();
    s.stealAttempts = stealAttempts_.load();
    s.stealHits = stealHits_.load();
    s.stealAborts = stealAborts_.load();
    s.migrations = migrations_.load();
    s.deadlineFires = deadlineFires_.load();
    s.expiredDrops = expiredDrops_.load();
    std::lock_guard<std::mutex> lock(statsMutex_);
    s.staleSignals = staleSignals_;
    s.lcLatency = lcLatency_;
    s.beLatency = beLatency_;
    return s;
}

double
PreemptibleRuntime::throughputRps() const
{
    TimeNs elapsed = hostNowNs() - startedAt_;
    if (elapsed == 0)
        return 0;
    return static_cast<double>(completed_.load()) / nsToSec(elapsed);
}

std::size_t
PreemptibleRuntime::longQueueLen() const
{
    std::lock_guard<std::mutex> lock(longMutex_);
    return longQueue_.size();
}

void
PreemptibleRuntime::sampleTelemetry(obs::MetricsRegistry &r)
{
    TimeNs now = hostNowNs();
    std::string prefix = "runtime";
    if (options_.tenant != 0)
        prefix += "/t" + std::to_string(options_.tenant);

    for (int i = 0; i < options_.nWorkers; ++i) {
        WorkerState &w = *workers_[static_cast<std::size_t>(i)];
        std::string suffix =
            (options_.tenant != 0
                 ? "/t" + std::to_string(options_.tenant) + ".w"
                 : "/w") +
            std::to_string(i);
        r.gauge("runtime.worker.current_task" + suffix)
            .set(w.currentTask.load(std::memory_order_relaxed));
        r.gauge("runtime.worker.deque_depth" + suffix)
            .set(static_cast<std::int64_t>(w.ready.size()));
        r.gauge("runtime.worker.inbox_depth" + suffix)
            .set(static_cast<std::int64_t>(w.inbox.size()));
        r.gauge("runtime.worker.shard_depth" + suffix)
            .set(static_cast<std::int64_t>(w.shard->depth()));
        TimeNs lp = w.lastPreemptNs.load(std::memory_order_relaxed);
        r.gauge("runtime.worker.last_preempt_age_ns" + suffix)
            .set(lp != 0 && now > lp
                     ? static_cast<std::int64_t>(now - lp)
                     : -1);
    }

    r.gauge(prefix + ".long_queue.depth")
        .set(static_cast<std::int64_t>(longQueueLen()));
    r.gauge(prefix + ".quantum_ns")
        .set(static_cast<std::int64_t>(quantum()));
    r.gauge(prefix + ".in_flight")
        .set(static_cast<std::int64_t>(
            inFlight_.load(std::memory_order_relaxed)));
    TimeNs lf = timer_.lastFireNs();
    r.gauge(prefix + ".timer.last_fire_age_ns")
        .set(lf != 0 && now > lf ? static_cast<std::int64_t>(now - lf)
                                 : -1);

    // Cumulative counts as true counters: each pass adds the delta
    // since the last one (single publisher thread; no races).
    auto bump = [&r](const std::string &name, std::uint64_t total,
                     std::uint64_t &prev) {
        if (total > prev)
            r.counter(name).add(total - prev);
        prev = total;
    };
    bump(prefix + ".submitted", submitted_.load(), publishedSubmitted_);
    bump(prefix + ".completed", completed_.load(), publishedCompleted_);
    bump(prefix + ".rejected_full", rejectedFull_.load(),
         publishedRejectedFull_);
    bump(prefix + ".rejected_policy", rejectedPolicy_.load(),
         publishedRejectedPolicy_);
    bump(prefix + ".preempted", preemptions_.load(),
         publishedPreemptions_);
    bump(prefix + ".timer.fires", timer_.firesTotal(),
         publishedTimerFires_);
    bump(prefix + ".timer.wheel_fires", timer_.wheelFiresTotal(),
         publishedWheelFires_);
    bump(prefix + ".timer.scans", timer_.scans(), publishedScans_);
}

} // namespace preempt::runtime
