#include "preemptible/preemptible_fn.hh"

#include <cerrno>
#include <cstdint>
#include <mutex>
#include <type_traits>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"

namespace preempt::runtime {

using fcontext::preempt_jump_fcontext;
using fcontext::preempt_make_fcontext;

namespace {

// Markers passed through context switches back to the scheduler.
constexpr std::uintptr_t kMarkCompleted = 1;
constexpr std::uintptr_t kMarkPreempted = 2;
constexpr std::uintptr_t kMarkYielded = 3;

// The worker context must be constant-initialised: the signal handler
// reads it and must never trigger a TLS init guard.
static_assert(std::is_trivially_destructible_v<WorkerContext>);
constinit thread_local WorkerContext tl_worker;
constinit thread_local bool tl_worker_active = false;

/**
 * Preemption signal handler (the UINTR-handler analogue). Runs on the
 * preemptible function's stack, saves it by context-switching back to
 * the worker's scheduler context, and — when the function is later
 * resumed — returns through sigreturn into the interrupted code.
 */
void
preemptionHandler(int)
{
    int saved_errno = errno;
    if (!tl_worker_active || !tl_worker.inRegion) {
        // Late fire: the function already completed and the worker is
        // back in scheduler code. Ignore.
        if (tl_worker_active)
            ++tl_worker.staleSignals;
        errno = saved_errno;
        return;
    }
    tl_worker.inRegion = 0;
    // obs::emit is async-signal-safe: one relaxed load plus wait-free
    // ring stores (a1 distinguishes the signal path from UINTR).
    obs::emit(obs::EventKind::HandlerEnter, 0, hostNowNs(),
              tl_worker.preemptions, 0, 1);
    fcontext::Transfer t = preempt_jump_fcontext(
        tl_worker.schedulerCtx,
        reinterpret_cast<void *>(kMarkPreempted));

    // Resumed via fn_resume — possibly on a different worker thread.
    WorkerContext &w = tl_worker;
    w.schedulerCtx = t.fctx;
    w.inRegion = 1;
    errno = saved_errno;
    // Normal return unwinds the kernel signal frame (sigreturn) and
    // resumes the interrupted request code.
}

std::once_flag handler_once;
int handler_signo = 0;

void
installHandler(int signo)
{
    std::call_once(handler_once, [signo] {
        struct sigaction sa = {};
        sa.sa_handler = &preemptionHandler;
        // SA_NODEFER: the handler context-switches away instead of
        // returning, so the signal must not stay blocked.
        sa.sa_flags = SA_NODEFER;
        sigemptyset(&sa.sa_mask);
        int rc = ::sigaction(signo, &sa, nullptr);
        fatal_if(rc != 0, "sigaction(%d) failed", signo);
        handler_signo = signo;
    });
    fatal_if(handler_signo != signo,
             "preemption handler already installed for signal %d",
             handler_signo);
}

} // namespace

namespace detail {

/** Entry point of every preemptible function context. */
void
fnEntry(fcontext::Transfer t)
{
    auto *fn = static_cast<PreemptibleFn *>(t.data);
    tl_worker.schedulerCtx = t.fctx;
    fn->body_();

    // Completion: leave the preemptible region and return control.
    tl_worker.inRegion = 0;
    preempt_jump_fcontext(tl_worker.schedulerCtx,
                          reinterpret_cast<void *>(kMarkCompleted));
    panic("completed preemptible function was resumed");
}

} // namespace detail

PreemptibleFn::PreemptibleFn(std::function<void()> body)
    : body_(std::move(body))
{
    fatal_if(!body_, "preemptible function needs a body");
}

PreemptibleFn::~PreemptibleFn()
{
    panic_if(state_ == FnState::Running,
             "destroying a running preemptible function");
    if (stack_.valid())
        fnStackPool().release(stack_);
}

void
PreemptibleFn::reset(std::function<void()> body)
{
    fatal_if(state_ == FnState::Running || state_ == FnState::Preempted,
             "reset requires a Fresh, Completed, or Cancelled function");
    body_ = std::move(body);
    fatal_if(!body_, "preemptible function needs a body");
    ctx_ = nullptr;
    state_ = FnState::Fresh;
    preemptions_ = 0;
}

StackPool &
fnStackPool()
{
    static StackPool pool(256 * 1024);
    return pool;
}

WorkerContext &
workerInit(UTimer &timer)
{
    fatal_if(tl_worker_active, "workerInit called twice on this thread");
    fatal_if(!fcontext::haveFastContext(),
             "this platform lacks the fcontext implementation");
    installHandler(timer.signo());
    tl_worker.slot = timer.registerThread();
    tl_worker.timer = &timer;
    tl_worker_active = true;
    return tl_worker;
}

void
workerShutdown()
{
    if (!tl_worker_active)
        return;
    panic_if(tl_worker.inRegion, "workerShutdown inside a function");
    if (tl_worker.slot && tl_worker.timer) {
        tl_worker.timer->unregisterThread(tl_worker.slot);
        tl_worker.slot = nullptr;
        tl_worker.timer = nullptr;
    }
    tl_worker_active = false;
}

WorkerContext *
currentWorker()
{
    return tl_worker_active ? &tl_worker : nullptr;
}

namespace detail {

FnStatus
runFn(PreemptibleFn &fn, TimeNs timeout, bool fresh)
{
    fatal_if(!tl_worker_active,
             "fn_launch/fn_resume require workerInit() first");
    WorkerContext &w = tl_worker;
    fatal_if(w.current != nullptr,
             "nested fn_launch/fn_resume on a worker");
    if (fresh) {
        fatal_if(fn.state() != FnState::Fresh,
                 "fn_launch requires a Fresh function (use fn_resume)");
        if (!fn.stack_.valid())
            fn.stack_ = fnStackPool().acquire();
        fn.ctx_ = preempt_make_fcontext(fn.stack_.top(),
                                            fn.stack_.usable(),
                                            &fnEntry);
    } else {
        fatal_if(fn.state() != FnState::Preempted,
                 "fn_resume requires a Preempted function");
    }

    fn.state_ = FnState::Running;
    w.current = &fn;

    bool preemptible =
        timeout != 0 && timeout != kTimeNever && w.slot != nullptr;
    if (preemptible)
        UTimer::armDeadline(w.slot, hostNowNs() + timeout);

    w.inRegion = 1;
    fcontext::Transfer t =
        preempt_jump_fcontext(fn.ctx_, fresh ? &fn : nullptr);
    w.inRegion = 0;
    if (preemptible)
        UTimer::disarm(w.slot);
    w.current = nullptr;

    auto marker = reinterpret_cast<std::uintptr_t>(t.data);
    switch (marker) {
      case kMarkCompleted:
        fn.state_ = FnState::Completed;
        fn.ctx_ = nullptr;
        // Recycle the stack through the global pool immediately.
        fnStackPool().release(fn.stack_);
        fn.stack_ = Stack{};
        ++w.completions;
        return FnStatus::Completed;
      case kMarkPreempted:
        fn.ctx_ = t.fctx;
        fn.state_ = FnState::Preempted;
        ++fn.preemptions_;
        ++w.preemptions;
        return FnStatus::Preempted;
      case kMarkYielded:
        fn.ctx_ = t.fctx;
        fn.state_ = FnState::Preempted;
        return FnStatus::Yielded;
      default:
        panic("unknown context-switch marker %llu",
              static_cast<unsigned long long>(marker));
    }
}

} // namespace detail

FnStatus
fn_launch(PreemptibleFn &fn, TimeNs timeout)
{
    return detail::runFn(fn, timeout, true);
}

FnStatus
fn_resume(PreemptibleFn &fn, TimeNs timeout)
{
    return detail::runFn(fn, timeout, false);
}

void
fn_cancel(PreemptibleFn &fn)
{
    fatal_if(fn.state() != FnState::Preempted,
             "fn_cancel requires a Preempted function");
    // The context's stack frames are abandoned, not unwound.
    fn.ctx_ = nullptr;
    fnStackPool().release(fn.stack_);
    fn.stack_ = Stack{};
    fn.state_ = FnState::Cancelled;
}

void
fn_yield()
{
    fatal_if(!tl_worker_active || !tl_worker.inRegion,
             "fn_yield outside a preemptible function");
    tl_worker.inRegion = 0;
    fcontext::Transfer t = preempt_jump_fcontext(
        tl_worker.schedulerCtx, reinterpret_cast<void *>(kMarkYielded));
    WorkerContext &w = tl_worker;
    w.schedulerCtx = t.fctx;
    w.inRegion = 1;
}

} // namespace preempt::runtime
