#include "preemptible/preemptible_fn.hh"

#include <sys/syscall.h>
#include <ucontext.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <type_traits>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"

// TSan cannot follow fcontext stack switches on its own: without help
// its shadow stack corrupts, stack-local accesses are misattributed
// across workers, and the in-signal/interceptor state of a preempted
// function leaks onto the scheduler. The fiber API gives every
// preemptible function its own sanitizer thread state that we switch
// alongside the real context switch.
#if defined(__SANITIZE_THREAD__)
#define PREEMPT_TSAN_FIBERS 1
extern "C" {
void *__tsan_get_current_fiber(void);
void *__tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void *fiber);
void __tsan_switch_to_fiber(void *fiber, unsigned flags);
}
#endif

namespace preempt::runtime {

using fcontext::preempt_jump_fcontext;
using fcontext::preempt_make_fcontext;

namespace {

#ifdef PREEMPT_TSAN_FIBERS
// Debug-only: PREEMPT_FIBER_TRACE=1 logs every fiber transition to
// stderr so a wiring violation can be reconstructed post-mortem.
inline void
fiberTrace(const char *op, const void *fiber)
{
    static const bool on = ::getenv("PREEMPT_FIBER_TRACE") != nullptr;
    if (!on)
        return;
    char buf[96];
    int n = ::snprintf(buf, sizeof(buf), "FT %s %p tid=%ld\n", op, fiber,
                       static_cast<long>(::syscall(SYS_gettid)));
    if (n > 0)
        (void)!::write(2, buf, static_cast<std::size_t>(n));
}
#else
inline void
fiberTrace(const char *, const void *)
{
}
#endif

inline void
tsanSwitchFiber(void *fiber, const char *site)
{
#ifdef PREEMPT_TSAN_FIBERS
    if (fiber) {
        fiberTrace(site, fiber);
        __tsan_switch_to_fiber(fiber, 0);
    }
#else
    (void)fiber;
    (void)site;
#endif
}

inline void *
tsanNewFiber()
{
#ifdef PREEMPT_TSAN_FIBERS
    void *f = __tsan_create_fiber(0);
    fiberTrace("new", f);
    return f;
#else
    return nullptr;
#endif
}

inline void
tsanFreeFiber(void *&fiber)
{
#ifdef PREEMPT_TSAN_FIBERS
    if (fiber) {
        fiberTrace("del", fiber);
        __tsan_destroy_fiber(fiber);
    }
#endif
    fiber = nullptr;
}

// Markers passed through context switches back to the scheduler.
constexpr std::uintptr_t kMarkCompleted = 1;
constexpr std::uintptr_t kMarkPreempted = 2;
constexpr std::uintptr_t kMarkYielded = 3;

std::once_flag handler_once;
int handler_signo = 0;

// Adjust the calling OS thread's mask for the preemption signal. The
// mask is kernel-side per-thread state, which makes this the one
// preemption-disabling primitive that is migration-safe by
// construction: if a preemption moves the function to another worker
// mid-call, the syscall simply executes (or restarts) on the thread
// the function landed on, and everything after it runs migration-free
// on that thread. fn_yield relies on this; see the comment there.
inline void
maskPreemptSignal(int how)
{
    if (handler_signo != 0) {
        sigset_t set;
        sigemptyset(&set);
        sigaddset(&set, handler_signo);
        ::pthread_sigmask(how, &set, nullptr);
    }
}

// Under TSan the fiber bookkeeping (__tsan_create/switch/destroy) is
// not async-signal-safe, and TSan's deferred signal delivery can run
// the preemption handler at interceptor boundaries inside those
// windows, corrupting the fiber<->proc wiring ("thr->proc1 == nullptr"
// CHECK). TSan builds therefore keep the preemption signal blocked
// outside the preemptible region: the scheduler side blocks it for the
// whole of runFn, and the fiber side unblocks it only once the region
// is entered (inRegion set, schedulerCtx live). Production builds skip
// this — the fcontext switch needs no bookkeeping, and two
// rt_sigprocmask calls per slice would tax the µs-scale hot path.
inline void
tsanMaskPreemptSignal(int how)
{
#ifdef PREEMPT_TSAN_FIBERS
    maskPreemptSignal(how);
#else
    (void)how;
#endif
}

inline void
tsanBlockPreemptSignal()
{
    tsanMaskPreemptSignal(SIG_BLOCK);
}

inline void
tsanUnblockPreemptSignal()
{
    tsanMaskPreemptSignal(SIG_UNBLOCK);
}

// The worker context must be constant-initialised: the signal handler
// reads it and must never trigger a TLS init guard.
static_assert(std::is_trivially_destructible_v<WorkerContext>);
constinit thread_local WorkerContext tl_worker;
constinit thread_local bool tl_worker_active = false;

/**
 * Re-derive the calling thread's worker context. Compilers compute a
 * thread_local's address once per function and reuse it across calls —
 * valid for ordinary code, wrong on a preemptible stack: the code after
 * a context switch may run on a *different* OS thread (preempt on
 * worker A, steal, resume on worker B), and a cached TLS address from
 * before the switch is faithfully restored with the callee-saved
 * registers, silently aliasing the old thread's state. Every TLS
 * access that follows a potential migration point must go through this
 * noinline call so the address is recomputed on the current thread.
 */
__attribute__((noinline)) WorkerContext &
workerTls()
{
    // The empty asm keeps interprocedural analysis from concluding the
    // returned address is invariant and folding repeated calls.
    asm volatile("");
    return tl_worker;
}

/**
 * Preemption signal handler (the UINTR-handler analogue). Runs on the
 * preemptible function's stack, saves it by context-switching back to
 * the worker's scheduler context, and — when the function is later
 * resumed — returns through sigreturn into the interrupted code.
 */
void
preemptionHandler(int, siginfo_t *, void *uctx)
{
    int saved_errno = errno;
    // Claim the preemption with a single exchange: SA_NODEFER means a
    // second fire (a resend, or a migrated stale deadline) can nest
    // inside this handler, and exactly one instance may perform the
    // context switch. The loser must return without touching the
    // context-switch state at all.
    if (!tl_worker_active ||
        tl_worker.inRegion.exchange(0, std::memory_order_relaxed) == 0) {
        // Late fire: the function already completed and the worker is
        // back in scheduler code, or another handler instance owns the
        // preemption. Ignore.
        if (tl_worker_active)
            ++tl_worker.staleSignals;
        errno = saved_errno;
        return;
    }
    // Decline the preemption when the function's body has already
    // returned: the completion path in fnEntry is executing, and a
    // context switch here would park it mid-sequence. Resumed on a
    // *different* worker after a steal, it would continue with the old
    // worker's TLS addresses held in restored callee-saved registers —
    // and jump into that worker's live scheduler context. The claim
    // above already cleared inRegion, which is exactly the state the
    // completion path is about to establish anyway, and the slice
    // expiry is moot: the function completes within nanoseconds.
    if (tl_worker.current != nullptr && tl_worker.current->finishing()) {
        ++tl_worker.staleSignals;
        errno = saved_errno;
        return;
    }
    // obs::emit is async-signal-safe: one relaxed load plus wait-free
    // ring stores (a1 distinguishes the signal path from UINTR).
    obs::emit(obs::EventKind::HandlerEnter, 0, hostNowNs(),
              tl_worker.preemptions, 0, 1);
    // The context switch below abandons this thread's sigreturn: the
    // kernel signal frame is unwound later on whichever worker resumes
    // the function. Restore the pre-delivery signal mask here, or this
    // thread would keep the during-handler mask forever (harmless with
    // our empty sa_mask, fatal under sanitizers that intercept
    // sigaction and run handlers with all signals blocked).
    if (uctx) {
        sigset_t mask = static_cast<ucontext_t *>(uctx)->uc_sigmask;
#ifdef PREEMPT_TSAN_FIBERS
        // The thread is headed into scheduler code, which TSan builds
        // keep signal-free (see tsanMaskPreemptSignal).
        if (handler_signo != 0)
            sigaddset(&mask, handler_signo);
#endif
        ::pthread_sigmask(SIG_SETMASK, &mask, nullptr);
    }
    // Read the jump target before the TSan fiber switch: an argument
    // evaluated after it would be attributed to the scheduler fiber
    // even though this side still owns the state.
    fcontext::Context sched =
        tl_worker.schedulerCtx.load(std::memory_order_relaxed);
    tsanSwitchFiber(tl_worker.tsanFiber, "sw-h");
    fcontext::Transfer t = preempt_jump_fcontext(
        sched, reinterpret_cast<void *>(kMarkPreempted));

    // Resumed via fn_resume — possibly on a different worker thread,
    // so the TLS address must be recomputed (errno re-resolves itself:
    // it expands to a fresh __errno_location() call).
    WorkerContext &w = workerTls();
    w.schedulerCtx.store(t.fctx, std::memory_order_relaxed);
    w.inRegion.store(1, std::memory_order_relaxed);
    // Back in the preemptible region. A real sigreturn restores the
    // task-time mask from the signal frame; TSan's deferred delivery
    // calls the handler as a plain function, so the unblock must be
    // explicit there.
    tsanUnblockPreemptSignal();
    errno = saved_errno;
    // Normal return unwinds the kernel signal frame (sigreturn) and
    // resumes the interrupted request code.
}

void
installHandler(int signo)
{
    std::call_once(handler_once, [signo] {
        struct sigaction sa = {};
        sa.sa_sigaction = &preemptionHandler;
        // SA_NODEFER: the handler context-switches away instead of
        // returning, so the signal must not stay blocked. SA_SIGINFO
        // exposes the ucontext so the handler can restore the signal
        // mask before abandoning the frame.
        sa.sa_flags = SA_NODEFER | SA_SIGINFO;
        sigemptyset(&sa.sa_mask);
        int rc = ::sigaction(signo, &sa, nullptr);
        fatal_if(rc != 0, "sigaction(%d) failed", signo);
        handler_signo = signo;
    });
    fatal_if(handler_signo != signo,
             "preemption handler already installed for signal %d",
             handler_signo);
}

} // namespace

namespace detail {

/** Entry point of every preemptible function context. */
void
fnEntry(fcontext::Transfer t)
{
    auto *fn = static_cast<PreemptibleFn *>(t.data);
    tl_worker.schedulerCtx.store(t.fctx, std::memory_order_relaxed);
    tl_worker.inRegion.store(1, std::memory_order_relaxed);
    tsanUnblockPreemptSignal();
    fn->body_();

    // Completion. The sequence below reads thread-local worker state,
    // and a preemption landing inside it would park the context
    // mid-sequence; after a steal it would resume on a different OS
    // thread whose restored callee-saved registers still hold the old
    // worker's TLS addresses — storing into the old worker and jumping
    // into its live scheduler context. Close that window first:
    // finishing_ lives in the PreemptibleFn, whose address is
    // migration-invariant, so the store lands on the right object no
    // matter which thread executes it, and from the moment it commits
    // the handler declines to context-switch this function. A signal
    // that fires before the store commits is an ordinary preemption —
    // the store then simply completes on whichever worker resumes us,
    // before any worker state is read.
    fn->finishing_.store(true, std::memory_order_relaxed);

    // No migration is possible past this point, so the recomputed TLS
    // address stays valid through the jump. (It must still be
    // recomputed: the body may have been preempted and resumed on a
    // different worker thread.)
    WorkerContext &w = workerTls();
    w.inRegion.store(0, std::memory_order_relaxed);
    tsanBlockPreemptSignal();
    fcontext::Context sched =
        w.schedulerCtx.load(std::memory_order_relaxed);
    tsanSwitchFiber(w.tsanFiber, "sw-e");
    preempt_jump_fcontext(sched,
                          reinterpret_cast<void *>(kMarkCompleted));
    panic("completed preemptible function was resumed");
}

} // namespace detail

PreemptibleFn::PreemptibleFn(std::function<void()> body)
    : body_(std::move(body))
{
    fatal_if(!body_, "preemptible function needs a body");
}

PreemptibleFn::~PreemptibleFn()
{
    panic_if(state_ == FnState::Running,
             "destroying a running preemptible function");
    tsanFreeFiber(tsanFiber_);
    if (stack_.valid())
        fnStackPool().release(stack_);
}

void
PreemptibleFn::reset(std::function<void()> body)
{
    fatal_if(state_ == FnState::Running || state_ == FnState::Preempted,
             "reset requires a Fresh, Completed, or Cancelled function");
    body_ = std::move(body);
    fatal_if(!body_, "preemptible function needs a body");
    ctx_ = nullptr;
    state_ = FnState::Fresh;
    preemptions_ = 0;
    finishing_.store(false, std::memory_order_relaxed);
}

StackPool &
fnStackPool()
{
    static StackPool pool(256 * 1024);
    return pool;
}

WorkerContext &
workerInit(UTimer &timer)
{
    fatal_if(tl_worker_active, "workerInit called twice on this thread");
    fatal_if(!fcontext::haveFastContext(),
             "this platform lacks the fcontext implementation");
    installHandler(timer.signo());
    tl_worker.slot = timer.registerThread();
    tl_worker.timer = &timer;
#ifdef PREEMPT_TSAN_FIBERS
    tl_worker.tsanFiber = __tsan_get_current_fiber();
    fiberTrace("base", tl_worker.tsanFiber);
#endif
    tl_worker_active = true;
    return tl_worker;
}

void
workerShutdown()
{
    if (!tl_worker_active)
        return;
    panic_if(tl_worker.inRegion.load(std::memory_order_relaxed),
             "workerShutdown inside a function");
    if (tl_worker.slot && tl_worker.timer) {
        tl_worker.timer->unregisterThread(tl_worker.slot);
        tl_worker.slot = nullptr;
        tl_worker.timer = nullptr;
    }
    tl_worker_active = false;
}

WorkerContext *
currentWorker()
{
    return tl_worker_active ? &tl_worker : nullptr;
}

namespace detail {

FnStatus
runFn(PreemptibleFn &fn, TimeNs timeout, bool fresh)
{
    fatal_if(!tl_worker_active,
             "fn_launch/fn_resume require workerInit() first");
    WorkerContext &w = tl_worker;
    fatal_if(w.current != nullptr,
             "nested fn_launch/fn_resume on a worker");
    if (fresh) {
        fatal_if(fn.state() != FnState::Fresh,
                 "fn_launch requires a Fresh function (use fn_resume)");
        if (!fn.stack_.valid())
            fn.stack_ = fnStackPool().acquire();
        fn.ctx_ = preempt_make_fcontext(fn.stack_.top(),
                                            fn.stack_.usable(),
                                            &fnEntry);
        fn.tsanFiber_ = tsanNewFiber();
    } else {
        fatal_if(fn.state() != FnState::Preempted,
                 "fn_resume requires a Preempted function");
    }

    fn.state_ = FnState::Running;
    w.current = &fn;

    // TSan builds keep the scheduler section signal-free; the fiber
    // side unblocks once the preemptible region is entered.
    tsanBlockPreemptSignal();

    bool preemptible =
        timeout != 0 && timeout != kTimeNever && w.slot != nullptr;
    if (preemptible)
        UTimer::armDeadline(w.slot, hostNowNs() + timeout);

    // inRegion is set inside the function context (fnEntry, the
    // handler tail, fn_yield's tail), never here: those sites run
    // after schedulerCtx holds a live jump target. Setting it before
    // the jump would open a window where an early deadline fire sends
    // the handler through a stale context.
    // Read fn.ctx_ before the TSan fiber switch: evaluated after it,
    // the load would be attributed to the function's fiber and race
    // with the scheduler-side fn.ctx_ = t.fctx below.
    fcontext::Context target = fn.ctx_;
    void *arg = fresh ? &fn : nullptr;
    tsanSwitchFiber(fn.tsanFiber_, "sw-r");
    fcontext::Transfer t = preempt_jump_fcontext(target, arg);
    w.inRegion.store(0, std::memory_order_relaxed);
    if (preemptible)
        UTimer::disarm(w.slot);
    w.current = nullptr;

    auto marker = reinterpret_cast<std::uintptr_t>(t.data);
    switch (marker) {
      case kMarkCompleted:
        fn.state_ = FnState::Completed;
        fn.ctx_ = nullptr;
        tsanFreeFiber(fn.tsanFiber_);
        // Recycle the stack through the global pool immediately.
        fnStackPool().release(fn.stack_);
        fn.stack_ = Stack{};
        ++w.completions;
        tsanUnblockPreemptSignal();
        return FnStatus::Completed;
      case kMarkPreempted:
        fn.ctx_ = t.fctx;
        fn.state_ = FnState::Preempted;
        ++fn.preemptions_;
        ++w.preemptions;
        tsanUnblockPreemptSignal();
        return FnStatus::Preempted;
      case kMarkYielded:
        fn.ctx_ = t.fctx;
        fn.state_ = FnState::Preempted;
        // Unconditional (not TSan-only): fn_yield blocked the signal
        // on this thread before switching here, and leaving it blocked
        // would silently disable preemption for every later slice.
        maskPreemptSignal(SIG_UNBLOCK);
        return FnStatus::Yielded;
      default:
        panic("unknown context-switch marker %llu",
              static_cast<unsigned long long>(marker));
    }
}

} // namespace detail

FnStatus
fn_launch(PreemptibleFn &fn, TimeNs timeout)
{
    return detail::runFn(fn, timeout, true);
}

FnStatus
fn_resume(PreemptibleFn &fn, TimeNs timeout)
{
    return detail::runFn(fn, timeout, false);
}

void
fn_cancel(PreemptibleFn &fn)
{
    fatal_if(fn.state() != FnState::Preempted,
             "fn_cancel requires a Preempted function");
    // The context's stack frames are abandoned, not unwound.
    fn.ctx_ = nullptr;
    tsanFreeFiber(fn.tsanFiber_);
    fnStackPool().release(fn.stack_);
    fn.stack_ = Stack{};
    fn.state_ = FnState::Cancelled;
}

void
fn_yield()
{
    // Block the preemption signal before touching any thread-local
    // state: a preemption landing between the TLS reads below and the
    // jump could migrate this function to another worker, leaving the
    // rest of the sequence operating on — and finally jumping into the
    // live scheduler context of — the old worker. The mask is
    // per-OS-thread kernel state, so the block is migration-safe (see
    // maskPreemptSignal); once it returns, everything up to the jump
    // runs on one thread. The completion path avoids the syscall cost
    // with PreemptibleFn::finishing_, but fn_yield has no
    // migration-stable handle on its own PreemptibleFn (it would have
    // to read it from worker TLS, which is the very thing that can go
    // stale); a cooperative yield is off the preemption hot path, so
    // the syscall is acceptable here. The matching unblock happens on
    // runFn's Yielded return, on this same thread.
    maskPreemptSignal(SIG_BLOCK);
    WorkerContext &w = workerTls();
    fatal_if(!tl_worker_active ||
                 !w.inRegion.load(std::memory_order_relaxed),
             "fn_yield outside a preemptible function");
    w.inRegion.store(0, std::memory_order_relaxed);
    fcontext::Context sched =
        w.schedulerCtx.load(std::memory_order_relaxed);
    tsanSwitchFiber(w.tsanFiber, "sw-y");
    fcontext::Transfer t = preempt_jump_fcontext(
        sched, reinterpret_cast<void *>(kMarkYielded));
    // Resumed — possibly on a different worker thread, so the TLS
    // address must be recomputed; the pre-yield `w` is stale here.
    WorkerContext &wr = workerTls();
    wr.schedulerCtx.store(t.fctx, std::memory_order_relaxed);
    wr.inRegion.store(1, std::memory_order_relaxed);
    // The resuming thread's mask does not have the signal blocked (the
    // yielding thread unblocked at runFn's Yielded return); only TSan
    // builds, which keep scheduler sections signal-free, need the
    // explicit unblock on region entry.
    tsanUnblockPreemptSignal();
}

} // namespace preempt::runtime
