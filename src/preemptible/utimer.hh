/**
 * @file
 * LibUtimer: the real user-space preemption timer (section IV-A).
 *
 * utimer_init creates a pool of timer threads (normally one). Each
 * application thread registers a 64-byte-aligned deadline slot with
 * utimer_register; utimer_arm_deadline is a single store of the
 * absolute time of the next wanted preemption. The timer thread scans
 * the slots and, when a deadline passes, delivers a preemption
 * notification to that thread.
 *
 * Delivery uses UINTR (SENDUIPI) on supporting hardware/kernels and
 * falls back to a directed signal (pthread_kill) elsewhere — the
 * paper's documented fallback path for pre-SPR CPUs.
 */

#ifndef PREEMPT_PREEMPTIBLE_UTIMER_HH
#define PREEMPT_PREEMPTIBLE_UTIMER_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <mutex>
#include <pthread.h>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hh"
#include "core/timing_wheel.hh"

namespace preempt::runtime {

/** Per-thread deadline location; naturally aligned to a cache line to
 *  avoid false sharing between the worker store and the timer scan. */
struct alignas(64) DeadlineSlot
{
    /** Absolute CLOCK_MONOTONIC ns of the next wanted preemption;
     *  kTimeNever disarms. */
    std::atomic<TimeNs> deadline{kTimeNever};

    /** Thread to notify. Atomic: a reused slot's tid store must not
     *  race the timer thread's read from the prior registration. */
    std::atomic<pthread_t> tid{};

    /** Slot lifecycle. */
    std::atomic<bool> inUse{false};

    /** Preemption notifications delivered through this slot. */
    std::atomic<std::uint64_t> fires{0};

    /** UITT index for SENDUIPI delivery; -1 = use signals. Set by the
     *  preemption layer after uintr_register_sender succeeds. */
    std::atomic<long> uipiIndex{-1};
};

/**
 * A per-worker timing-wheel shard serviced by the LibUtimer thread.
 *
 * Each runtime worker owns one shard for its tasks' pending deadlines
 * (SLO timeouts), so arming a deadline contends only on the owner's
 * shard instead of funneling every deadline through one central wheel.
 * The timer thread advances every registered shard on each scan pass.
 *
 * Ownership rules (see DESIGN.md section 11): the wheel is guarded by
 * the shard mutex; schedule/cancel may be called from any thread
 * holding it, and the fire callback runs on the timer thread with the
 * same mutex held, so cancel-vs-fire is race-free — after cancel()
 * returns false the fire has fully completed, never "in flight".
 */
class WheelShard
{
  public:
    /** Invoked under the shard mutex for each expired deadline with
     *  (cookie, deadline, fire time). Must not take other shard
     *  mutexes or block. */
    using FireFn =
        std::function<void(std::uint64_t, TimeNs, TimeNs)>;

    WheelShard(TimeNs tick, std::size_t slots, int levels, FireFn fire)
        : wheel_(tick, slots, levels), onFire_(std::move(fire))
    {
    }

    /** Arm a deadline. Thread-safe. @return wheel timer id. */
    std::uint64_t
    schedule(TimeNs when, std::uint64_t cookie)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::uint64_t id = wheel_.schedule(when, cookie);
        TimeNs hint = earliestHint_.load(std::memory_order_relaxed);
        while (when < hint &&
               !earliestHint_.compare_exchange_weak(
                   hint, when, std::memory_order_relaxed)) {
        }
        return id;
    }

    /** Revoke a deadline. Thread-safe. False = already fired (fully —
     *  the fire callback ran to completion) or already cancelled. */
    bool
    cancel(std::uint64_t id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return wheel_.cancel(id);
    }

    /**
     * Set the wheel's epoch before the first schedule(). Without this
     * a wheel armed with absolute host timestamps would replay every
     * tick from zero on its first advance — hours of virtual time
     * under the shard mutex.
     */
    void
    primeTo(TimeNs now)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Same wall-clock clamp as advance(): the timer thread may
        // have carried the wheel past our pre-lock timestamp already.
        if (now > wheel_.now())
            wheel_.advance(now, [](std::uint64_t, TimeNs) {});
    }

    /** Pending deadlines (racy snapshot). */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return wheel_.size();
    }

    /** Deadlines fired through this shard. */
    std::uint64_t fires() const
    {
        return fires_.load(std::memory_order_relaxed);
    }

    /** Lower bound on the next fire (lock-free; for nap sizing). */
    TimeNs earliestHint() const
    {
        return earliestHint_.load(std::memory_order_relaxed);
    }

    /** Metrics gauge periodically updated with the shard's depth by
     *  the timer thread; "" = not published. Set before registering. */
    std::string depthGauge;

  private:
    friend class UTimer;

    /** Timer thread: fire everything due at `now`. */
    void
    advance(TimeNs now)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // `now` was sampled before taking the mutex; a concurrent
        // primeTo/advance with a fresher timestamp may already have
        // moved the wheel past it. The wheel itself treats a backwards
        // advance as a hard bug (in the deterministic simulator it is
        // one), so clamp the wall-clock race here instead.
        if (now < wheel_.now())
            now = wheel_.now();
        wheel_.advance(now, [&](std::uint64_t cookie, TimeNs when) {
            fires_.fetch_add(1, std::memory_order_relaxed);
            if (onFire_)
                onFire_(cookie, when, now);
        });
        earliestHint_.store(wheel_.earliest(),
                            std::memory_order_relaxed);
    }

    mutable std::mutex mutex_;
    core::TimingWheel wheel_;
    FireFn onFire_;
    std::atomic<TimeNs> earliestHint_{kTimeNever};
    std::atomic<std::uint64_t> fires_{0};
};

/** The timer-thread pool (normally a single thread). */
class UTimer
{
  public:
    struct Options
    {
        /** Signal used for the fallback delivery path. */
        int signo = SIGURG;

        /**
         * Sleep between scan passes when no deadline is imminent.
         * 0 = busy-poll like the paper's dedicated timer core; a
         * small sleep keeps single-CPU hosts usable.
         */
        TimeNs idleSleep = usToNs(200);

        /** Deadlines this close are busy-waited for precision. */
        TimeNs spinThreshold = usToNs(100);

        /** Maximum registered threads. */
        int maxThreads = 512;
    };

    UTimer() = default;
    ~UTimer();

    UTimer(const UTimer &) = delete;
    UTimer &operator=(const UTimer &) = delete;

    /** utimer_init: start the timer thread. */
    void init(Options options);

    /** utimer_init with default options. */
    void init() { init(Options{}); }

    /** Stop the timer thread and drop all slots. */
    void shutdown();

    bool running() const { return running_.load(); }

    /**
     * utimer_register: allocate a deadline slot for the calling
     * thread. The slot stays valid until unregisterThread().
     */
    DeadlineSlot *registerThread();

    /** Release a slot (call from the owning thread). */
    void unregisterThread(DeadlineSlot *slot);

    /** utimer_arm_deadline: one store of the absolute deadline. */
    static void
    armDeadline(DeadlineSlot *slot, TimeNs absolute_ns)
    {
        slot->deadline.store(absolute_ns, std::memory_order_release);
    }

    /** Disarm (deadline to never). */
    static void
    disarm(DeadlineSlot *slot)
    {
        slot->deadline.store(kTimeNever, std::memory_order_release);
    }

    /**
     * Attach a timing-wheel shard: the timer thread advances it on
     * every scan pass and sizes naps from its earliest hint. The shard
     * must outlive its registration (unregister before destroying it,
     * or shut the timer down first).
     */
    void registerWheel(WheelShard *shard);

    /** Detach a shard; after return the timer thread no longer
     *  touches it. */
    void unregisterWheel(WheelShard *shard);

    /** Deadlines fired through registered wheel shards. */
    std::uint64_t wheelFiresTotal() const
    {
        return wheelFiresTotal_.load();
    }

    /** Total preemption notifications delivered. */
    std::uint64_t firesTotal() const { return firesTotal_.load(); }

    /** CLOCK_MONOTONIC ns of the most recent preemption delivery
     *  (0 = none yet); telemetry derives last-fire age from this. */
    TimeNs lastFireNs() const
    {
        return lastFireNs_.load(std::memory_order_relaxed);
    }

    /** Scan passes executed (for poll-rate diagnostics). */
    std::uint64_t scans() const { return scans_.load(); }

    int signo() const { return options_.signo; }

    /** True when delivery uses UINTR rather than signals. */
    bool usingUintr() const { return usingUintr_; }

  private:
    void timerLoop();

    Options options_;
    std::vector<DeadlineSlot> slots_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> firesTotal_{0};
    std::atomic<std::uint64_t> wheelFiresTotal_{0};
    std::atomic<std::uint64_t> scans_{0};
    std::atomic<TimeNs> lastFireNs_{0};
    bool usingUintr_ = false;

    /** Registered wheel shards; the timer thread iterates under the
     *  mutex, so unregisterWheel() synchronises with advancing. */
    mutable std::mutex wheelsMutex_;
    std::vector<WheelShard *> wheels_;
};

/** Process-wide default timer instance (utimer_init convenience). */
UTimer &globalUTimer();

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_UTIMER_HH
