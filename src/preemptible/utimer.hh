/**
 * @file
 * LibUtimer: the real user-space preemption timer (section IV-A).
 *
 * utimer_init creates a pool of timer threads (normally one). Each
 * application thread registers a 64-byte-aligned deadline slot with
 * utimer_register; utimer_arm_deadline is a single store of the
 * absolute time of the next wanted preemption. The timer thread scans
 * the slots and, when a deadline passes, delivers a preemption
 * notification to that thread.
 *
 * Delivery uses UINTR (SENDUIPI) on supporting hardware/kernels and
 * falls back to a directed signal (pthread_kill) elsewhere — the
 * paper's documented fallback path for pre-SPR CPUs.
 */

#ifndef PREEMPT_PREEMPTIBLE_UTIMER_HH
#define PREEMPT_PREEMPTIBLE_UTIMER_HH

#include <atomic>
#include <csignal>
#include <cstdint>
#include <pthread.h>
#include <thread>
#include <vector>

#include "common/time.hh"

namespace preempt::runtime {

/** Per-thread deadline location; naturally aligned to a cache line to
 *  avoid false sharing between the worker store and the timer scan. */
struct alignas(64) DeadlineSlot
{
    /** Absolute CLOCK_MONOTONIC ns of the next wanted preemption;
     *  kTimeNever disarms. */
    std::atomic<TimeNs> deadline{kTimeNever};

    /** Thread to notify. */
    pthread_t tid{};

    /** Slot lifecycle. */
    std::atomic<bool> inUse{false};

    /** Preemption notifications delivered through this slot. */
    std::atomic<std::uint64_t> fires{0};

    /** UITT index for SENDUIPI delivery; -1 = use signals. Set by the
     *  preemption layer after uintr_register_sender succeeds. */
    std::atomic<long> uipiIndex{-1};
};

/** The timer-thread pool (normally a single thread). */
class UTimer
{
  public:
    struct Options
    {
        /** Signal used for the fallback delivery path. */
        int signo = SIGURG;

        /**
         * Sleep between scan passes when no deadline is imminent.
         * 0 = busy-poll like the paper's dedicated timer core; a
         * small sleep keeps single-CPU hosts usable.
         */
        TimeNs idleSleep = usToNs(200);

        /** Deadlines this close are busy-waited for precision. */
        TimeNs spinThreshold = usToNs(100);

        /** Maximum registered threads. */
        int maxThreads = 512;
    };

    UTimer() = default;
    ~UTimer();

    UTimer(const UTimer &) = delete;
    UTimer &operator=(const UTimer &) = delete;

    /** utimer_init: start the timer thread. */
    void init(Options options);

    /** utimer_init with default options. */
    void init() { init(Options{}); }

    /** Stop the timer thread and drop all slots. */
    void shutdown();

    bool running() const { return running_.load(); }

    /**
     * utimer_register: allocate a deadline slot for the calling
     * thread. The slot stays valid until unregisterThread().
     */
    DeadlineSlot *registerThread();

    /** Release a slot (call from the owning thread). */
    void unregisterThread(DeadlineSlot *slot);

    /** utimer_arm_deadline: one store of the absolute deadline. */
    static void
    armDeadline(DeadlineSlot *slot, TimeNs absolute_ns)
    {
        slot->deadline.store(absolute_ns, std::memory_order_release);
    }

    /** Disarm (deadline to never). */
    static void
    disarm(DeadlineSlot *slot)
    {
        slot->deadline.store(kTimeNever, std::memory_order_release);
    }

    /** Total preemption notifications delivered. */
    std::uint64_t firesTotal() const { return firesTotal_.load(); }

    /** Scan passes executed (for poll-rate diagnostics). */
    std::uint64_t scans() const { return scans_.load(); }

    int signo() const { return options_.signo; }

    /** True when delivery uses UINTR rather than signals. */
    bool usingUintr() const { return usingUintr_; }

  private:
    void timerLoop();

    Options options_;
    std::vector<DeadlineSlot> slots_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> firesTotal_{0};
    std::atomic<std::uint64_t> scans_{0};
    bool usingUintr_ = false;
};

/** Process-wide default timer instance (utimer_init convenience). */
UTimer &globalUTimer();

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_UTIMER_HH
