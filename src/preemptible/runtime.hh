/**
 * @file
 * PreemptibleRuntime: a ready-to-use request-serving runtime built on
 * the fn_launch/fn_resume API — the real-host counterpart of the
 * scheduler evaluated in section V-C.
 *
 * Topology: one LibUtimer timer thread plus N worker threads. Tasks
 * submitted from any thread are distributed round-robin across
 * per-worker lock-free dispatch queues. Workers implement the paper's
 * scheduling policy #1 (FCFS with preemption): new tasks run first
 * with the current time quantum; tasks that exceed their slice are
 * preempted and parked on a shared long queue, which workers drain
 * when their dispatch queues are empty. The time quantum can be
 * changed at runtime (policy #2 / Algorithm 1 build on this).
 */

#ifndef PREEMPT_PREEMPTIBLE_RUNTIME_HH
#define PREEMPT_PREEMPTIBLE_RUNTIME_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.hh"
#include "common/spsc_ring.hh"
#include "common/time.hh"
#include "preemptible/preemptible_fn.hh"
#include "preemptible/utimer.hh"

namespace preempt::runtime {

/** A unit of work submitted to the runtime. */
struct TaskRecord
{
    std::function<void()> body;
    int cls = 0;              ///< 0 = latency-critical, 1 = best-effort
    std::uint64_t id = 0;     ///< submission order, for tracing
    TimeNs submitNs = 0;
    TimeNs finishNs = 0;
    std::unique_ptr<PreemptibleFn> fn; ///< bound when first launched
};

/** Aggregated runtime statistics. */
struct RuntimeStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t staleSignals = 0;
    LatencyHistogram lcLatency; ///< sojourn time of class-0 tasks (ns)
    LatencyHistogram beLatency; ///< sojourn time of class-1 tasks (ns)
};

/** The runtime object (one per process is typical). */
class PreemptibleRuntime
{
  public:
    struct Options
    {
        /** Worker threads. */
        int nWorkers = 2;

        /**
         * Initial time quantum. Host-scale defaults are milliseconds:
         * on a shared/1-CPU machine signal latency is far above the
         * 3 us a dedicated SPR timer core achieves.
         */
        TimeNs quantum = msToNs(4);

        /** Timer configuration (utimer_init). */
        UTimer::Options timer;

        /** Per-worker dispatch queue capacity. */
        std::size_t queueCapacity = 4096;

        /** Worker idle nap between queue polls. */
        TimeNs idleNap = usToNs(100);
    };

    explicit PreemptibleRuntime(Options options);
    ~PreemptibleRuntime();

    PreemptibleRuntime(const PreemptibleRuntime &) = delete;
    PreemptibleRuntime &operator=(const PreemptibleRuntime &) = delete;

    /**
     * Submit a task.
     * @param body work to run (may be preempted transparently)
     * @param cls  0 = latency-critical, 1 = best-effort
     * @return false when the dispatch queue is full (backpressure).
     */
    bool submit(std::function<void()> body, int cls = 0);

    /** Block until every submitted task completed. */
    void quiesce();

    /** Stop workers (drains in-flight tasks first) and the timer. */
    void shutdown();

    /** Current preemption time slice. */
    TimeNs quantum() const { return quantum_.load(); }

    /** Change the time slice (takes effect on the next launch). */
    void setQuantum(TimeNs q) { quantum_.store(q); }

    /** Snapshot of the aggregated statistics. */
    RuntimeStats stats() const;

    /** Completions per second over the runtime's lifetime so far. */
    double throughputRps() const;

    /** Tasks on the shared long (preempted) queue. */
    std::size_t longQueueLen() const;

    int nWorkers() const { return options_.nWorkers; }

    /** The underlying timer (for fire statistics). */
    const UTimer &timer() const { return timer_; }

  private:
    void workerMain(int index);

    /** Run one task until completion, preempting per quantum. */
    void runTask(int worker, std::unique_ptr<TaskRecord> task);

    Options options_;
    UTimer timer_;
    std::atomic<TimeNs> quantum_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> preemptions_{0};
    std::atomic<std::uint64_t> inFlight_{0};
    std::atomic<std::uint64_t> rrNext_{0};
    TimeNs startedAt_;

    std::vector<std::unique_ptr<SpscRing<TaskRecord *>>> queues_;
    std::vector<std::thread> workers_;

    mutable std::mutex longMutex_;
    std::deque<std::unique_ptr<TaskRecord>> longQueue_;

    mutable std::mutex statsMutex_;
    LatencyHistogram lcLatency_;
    LatencyHistogram beLatency_;
    std::uint64_t staleSignals_ = 0;
};

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_RUNTIME_HH
