/**
 * @file
 * PreemptibleRuntime: a ready-to-use request-serving runtime built on
 * the fn_launch/fn_resume API — the real-host counterpart of the
 * scheduler evaluated in section V-C.
 *
 * Topology: one LibUtimer timer thread plus N worker threads. Tasks
 * submitted from any thread land in a per-worker inbox ring
 * (round-robin by default; submitTo() targets a specific worker) and
 * are moved by the owning worker onto its bounded lock-free
 * work-stealing deque. Workers implement the paper's scheduling
 * policy #1 (FCFS with preemption): tasks run with the current time
 * quantum; tasks that exceed their slice are preempted and parked on
 * a shared long queue, which workers drain when their own queues are
 * empty. An idle worker then steals from a peer — two victims are
 * chosen at random (seeded deterministically per worker) and a batch
 * is taken FIFO from the longer deque — and only naps when stealing
 * found nothing, so placement skew no longer serialises the runtime
 * behind one worker (the decentralised design of PAPER.md section IV,
 * in contrast to a Shinjuku-style central dispatcher).
 *
 * Per-task deadlines: each worker owns a WheelShard (a TimingWheel
 * advanced by the LibUtimer thread). A task submitted with a deadline
 * arms it in the target worker's shard; when the task changes workers
 * (steal or long-queue adoption) the pending deadline migrates to the
 * adopting worker's shard and still fires exactly once. The time
 * quantum can be changed at runtime (policy #2 / Algorithm 1 build on
 * this).
 */

#ifndef PREEMPT_PREEMPTIBLE_RUNTIME_HH
#define PREEMPT_PREEMPTIBLE_RUNTIME_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/spsc_ring.hh"
#include "common/time.hh"
#include "preemptible/preemptible_fn.hh"
#include "preemptible/steal_deque.hh"
#include "preemptible/utimer.hh"

namespace preempt::obs {
class MetricsRegistry;
} // namespace preempt::obs

namespace preempt::control {
class AdmissionController;
} // namespace preempt::control

namespace preempt::runtime {

/** A unit of work submitted to the runtime. */
struct TaskRecord
{
    std::function<void()> body;
    int cls = 0;              ///< 0 = latency-critical, 1 = best-effort
    std::uint64_t id = 0;     ///< submission order, for tracing
    TimeNs submitNs = 0;
    TimeNs finishNs = 0;
    std::unique_ptr<PreemptibleFn> fn; ///< bound when first launched

    // Pending SLO deadline, owned by shard `owner` while armed. Only
    // the thread currently holding the task writes owner/deadlineId;
    // the timer thread's fire callback touches just the atomic flag.
    TimeNs deadlineAt = 0;    ///< absolute deadline ns (0 = none)
    std::uint64_t deadlineId = 0; ///< wheel timer id (0 = disarmed)
    std::uint32_t owner = 0;  ///< worker whose shard holds the deadline
    std::atomic<bool> deadlineExpired{false};
};

/** Aggregated runtime statistics. */
struct RuntimeStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejectedFull = 0;   ///< submits refused: inbox full
    std::uint64_t rejectedPolicy = 0; ///< submits refused: admission
    std::uint64_t preemptions = 0;
    std::uint64_t staleSignals = 0;
    std::uint64_t stealAttempts = 0; ///< steal rounds tried
    std::uint64_t stealHits = 0;     ///< tasks obtained by stealing
    std::uint64_t stealAborts = 0;   ///< steals lost to a CAS race
    std::uint64_t migrations = 0;    ///< tasks that changed workers
    std::uint64_t deadlineFires = 0; ///< per-task deadlines expired
    std::uint64_t expiredDrops = 0;  ///< tasks dropped past deadline
    LatencyHistogram lcLatency; ///< sojourn time of class-0 tasks (ns)
    LatencyHistogram beLatency; ///< sojourn time of class-1 tasks (ns)
};

/** The runtime object (one per process is typical). */
class PreemptibleRuntime
{
  public:
    struct Options
    {
        /** Worker threads. */
        int nWorkers = 2;

        /**
         * Initial time quantum. Host-scale defaults are milliseconds:
         * on a shared/1-CPU machine signal latency is far above the
         * 3 us a dedicated SPR timer core achieves.
         */
        TimeNs quantum = msToNs(4);

        /** Timer configuration (utimer_init). */
        UTimer::Options timer;

        /** Per-worker inbox and steal-deque capacity. */
        std::size_t queueCapacity = 4096;

        /** Worker idle nap after a fruitless steal round. */
        TimeNs idleNap = usToNs(100);

        /** Work stealing between workers (off = the pre-steal
         *  round-robin-only baseline measured by bench/micro_steal). */
        bool stealing = true;

        /** Max tasks taken per steal round (oldest first). */
        std::size_t stealBatch = 8;

        /** Two-choice victim rounds before giving up and napping. */
        int stealRounds = 2;

        /** Seed for the per-worker victim-selection streams. */
        std::uint64_t seed = 0x7265616c; // 'real'

        /** Per-worker deadline wheel shard geometry. */
        TimeNs wheelTick = usToNs(100);
        std::size_t wheelSlots = 256;
        int wheelLevels = 3;

        /**
         * Drop tasks whose deadline expired before completion: a
         * not-yet-started expired task is discarded instead of
         * launched, and an expired preempted task is fn_cancel'ed
         * (section III-B: release resources once the SLO is already
         * violated). Off by default.
         */
        bool dropExpired = false;

        /**
         * Tenant id stamped on every task's TaskSubmit trace record:
         * colocated runtimes (one per tenant, as in
         * bench/scalability_tenants) give each instance its own id so
         * the span collector attributes scheduler delay per tenant.
         */
        std::uint32_t tenant = 0;

        /**
         * Admission controller gating every submit (may be shared by
         * colocated runtimes — it keeps per-tenant state). A rejected
         * submission returns false before any task state is created,
         * emits a TaskReject trace record and counts in
         * RuntimeStats::rejectedPolicy. nullptr = no gating.
         */
        std::shared_ptr<control::AdmissionController> admission;
    };

    explicit PreemptibleRuntime(Options options);
    ~PreemptibleRuntime();

    PreemptibleRuntime(const PreemptibleRuntime &) = delete;
    PreemptibleRuntime &operator=(const PreemptibleRuntime &) = delete;

    /**
     * Submit a task (round-robin placement).
     * @param body work to run (may be preempted transparently)
     * @param cls  0 = latency-critical, 1 = best-effort
     * @return false when the dispatch queue is full (backpressure).
     */
    bool submit(std::function<void()> body, int cls = 0);

    /**
     * Submit to a specific worker's inbox, optionally with a relative
     * deadline armed in that worker's wheel shard.
     * @param deadlineIn 0 = no deadline, else ns from now; expiry sets
     *        the task's expired flag (and drops it under
     *        Options::dropExpired), firing exactly once even when the
     *        task is stolen to another worker.
     */
    bool submitTo(int worker, std::function<void()> body, int cls = 0,
                  TimeNs deadlineIn = 0);

    /** Block until every submitted task completed. */
    void quiesce();

    /** Stop workers (drains in-flight tasks first) and the timer. */
    void shutdown();

    /** Current preemption time slice. */
    TimeNs quantum() const { return quantum_.load(); }

    /** Change the time slice (takes effect on the next launch). */
    void setQuantum(TimeNs q) { quantum_.store(q); }

    /** Snapshot of the aggregated statistics. */
    RuntimeStats stats() const;

    /** Completions per second over the runtime's lifetime so far. */
    double throughputRps() const;

    /** Tasks on the shared long (preempted) queue. */
    std::size_t longQueueLen() const;

    int nWorkers() const { return options_.nWorkers; }

    /** The underlying timer (for fire statistics). */
    const UTimer &timer() const { return timer_; }

    /** A worker's deadline wheel shard (for depth inspection). */
    const WheelShard &wheelShard(int worker) const
    {
        return *workers_[static_cast<std::size_t>(worker)]->shard;
    }

  private:
    /** Per-worker scheduling state. */
    struct WorkerState
    {
        WorkerState(std::size_t queueCapacity, std::uint64_t seed,
                    std::uint64_t stream)
            : inbox(queueCapacity), ready(queueCapacity),
              rng(seed, stream)
        {
        }

        /** Submitters push here (multi-producer via submitMutex). */
        SpscRing<TaskRecord *> inbox;
        std::mutex submitMutex;

        /** Owner pops LIFO; idle peers steal FIFO batches. */
        StealDeque<TaskRecord *> ready;

        /** Victim-selection stream (deterministic per worker). */
        Rng rng;

        /** Deadline shard (advanced by the LibUtimer thread). */
        std::unique_ptr<WheelShard> shard;

        // Live scheduler state published by the telemetry sampler:
        // written by the owning worker, read from the publisher thread.
        std::atomic<std::int64_t> currentTask{-1}; ///< task id, -1 idle
        std::atomic<TimeNs> lastPreemptNs{0};      ///< last preempt time

        std::thread thread;
    };

    void workerMain(int index);

    /** Run one task until completion, preempting per quantum. */
    void runTask(int worker, std::unique_ptr<TaskRecord> task);

    /** Move inbox arrivals onto the ready deque. @return tasks moved. */
    std::size_t drainInbox(int index, WorkerState &w);

    /** Two-choice steal round; pushes spoils onto our deque.
     *  @return a task to run now, or nullptr. */
    TaskRecord *trySteal(int self);

    /** Re-home a task's pending deadline onto `to`'s shard. */
    void migrateTask(TaskRecord *task, int to);

    /** Revoke a task's pending deadline (pre-completion/drop). */
    void cancelDeadline(TaskRecord *task);

    /** Drop an expired task (dropExpired policy). */
    bool deadlineHopeless(const TaskRecord *task) const;
    void dropTask(int worker, std::unique_ptr<TaskRecord> task);

    /** Telemetry sampler body: publish live per-worker scheduler
     *  state into the publisher's registry (publisher thread). */
    void sampleTelemetry(obs::MetricsRegistry &registry);

    Options options_;
    UTimer timer_;
    std::atomic<TimeNs> quantum_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> rejectedFull_{0};
    std::atomic<std::uint64_t> rejectedPolicy_{0};
    std::atomic<std::uint64_t> preemptions_{0};
    std::atomic<std::uint64_t> inFlight_{0};
    std::atomic<std::uint64_t> rrNext_{0};
    std::atomic<std::uint64_t> stealAttempts_{0};
    std::atomic<std::uint64_t> stealHits_{0};
    std::atomic<std::uint64_t> stealAborts_{0};
    std::atomic<std::uint64_t> migrations_{0};
    std::atomic<std::uint64_t> deadlineFires_{0};
    std::atomic<std::uint64_t> expiredDrops_{0};
    TimeNs startedAt_;

    /** Telemetry sampler registration (0 = none). */
    std::uint64_t samplerId_ = 0;

    // Cumulative values already pushed into sampler counters, so each
    // sampler pass adds only the delta (publisher thread only).
    std::uint64_t publishedSubmitted_ = 0;
    std::uint64_t publishedCompleted_ = 0;
    std::uint64_t publishedRejectedFull_ = 0;
    std::uint64_t publishedRejectedPolicy_ = 0;
    std::uint64_t publishedPreemptions_ = 0;
    std::uint64_t publishedTimerFires_ = 0;
    std::uint64_t publishedWheelFires_ = 0;
    std::uint64_t publishedScans_ = 0;

    std::vector<std::unique_ptr<WorkerState>> workers_;

    mutable std::mutex longMutex_;
    std::deque<std::unique_ptr<TaskRecord>> longQueue_;

    mutable std::mutex statsMutex_;
    LatencyHistogram lcLatency_;
    LatencyHistogram beLatency_;
    std::uint64_t staleSignals_ = 0;
};

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_RUNTIME_HH
