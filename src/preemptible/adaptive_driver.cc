#include "preemptible/adaptive_driver.hh"

#include <algorithm>
#include <vector>

#include "common/stats.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"

namespace preempt::runtime {

AdaptiveQuantumDriver::AdaptiveQuantumDriver(PreemptibleRuntime &runtime,
                                             Options options)
    : runtime_(runtime), options_(options),
      controller_(options.params, runtime.quantum())
{
    lastCompleted_ = runtime_.stats().completed;
    thread_ = std::thread([this] { controlLoop(); });
}

AdaptiveQuantumDriver::~AdaptiveQuantumDriver()
{
    stop();
}

void
AdaptiveQuantumDriver::stop()
{
    if (!running_.exchange(false))
        return;
    if (thread_.joinable())
        thread_.join();
}

void
AdaptiveQuantumDriver::addLatencySample(TimeNs latency_ns)
{
    std::lock_guard<std::mutex> lock(samplesMutex_);
    samples_.push_back(static_cast<double>(latency_ns));
    while (samples_.size() > options_.sampleWindow)
        samples_.pop_front();
}

void
AdaptiveQuantumDriver::controlLoop()
{
    while (running_.load(std::memory_order_relaxed)) {
        timespec ts{
            static_cast<time_t>(options_.period / 1000000000ULL),
            static_cast<long>(options_.period % 1000000000ULL)};
        ::nanosleep(&ts, nullptr);
        if (!running_.load(std::memory_order_relaxed))
            break;
        step();
    }
}

void
AdaptiveQuantumDriver::step()
{
    RuntimeStats s = runtime_.stats();
    std::uint64_t completed = s.completed;
    double load = static_cast<double>(completed - lastCompleted_) /
                  nsToSec(options_.period);
    lastCompleted_ = completed;
    peakRps_ = std::max(peakRps_, load);

    core::ControlInputs in;
    in.loadRps = load;
    in.maxLoadRps =
        options_.maxLoadRps > 0 ? options_.maxLoadRps : peakRps_;
    in.maxQueueLen = runtime_.longQueueLen();
    {
        std::lock_guard<std::mutex> lock(samplesMutex_);
        std::vector<double> copy(samples_.begin(), samples_.end());
        in.tailIndex = hillTailIndex(copy);
    }

    TimeNs q = controller_.step(in);
    obs::emit(obs::EventKind::QuantumDecision, 0, hostNowNs(),
              static_cast<std::uint64_t>(in.loadRps), q,
              (static_cast<std::uint64_t>(controller_.lastDecision())
               << 32) |
                  static_cast<std::uint64_t>(std::min<std::size_t>(
                      in.maxQueueLen, 0xffffffff)));
    obs::addCount("adaptive_driver.steps");
    obs::setGauge("adaptive_driver.quantum_ns",
                  static_cast<std::int64_t>(q));
    runtime_.setQuantum(q);
    decisions_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace preempt::runtime
