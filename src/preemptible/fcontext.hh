/**
 * @file
 * Minimal fcontext-style symmetric context switching.
 *
 * The paper bases its context management on the fcontext library
 * (section IV-B): a context switch saves only the callee-saved
 * registers and the stack pointer, making a user-level switch ~40 ns —
 * two orders of magnitude cheaper than a kernel thread switch.
 *
 * On x86-64 SysV the switch is implemented in assembly
 * (fcontext_x86_64.S); other platforms fall back to ucontext.
 */

#ifndef PREEMPT_PREEMPTIBLE_FCONTEXT_HH
#define PREEMPT_PREEMPTIBLE_FCONTEXT_HH

#include <cstddef>

namespace preempt::fcontext {

/** Opaque handle to a suspended context (its stack pointer). */
using Context = void *;

/** Result of a context switch: who suspended, plus a data word. */
struct Transfer
{
    Context fctx; ///< the context that was just suspended
    void *data;   ///< value passed through the switch
};

/** Entry function of a fresh context. Must never return normally;
 *  finish by jumping to another context. */
using EntryFn = void (*)(Transfer);

extern "C" {

/**
 * Switch to another context.
 *
 * @param to  context to resume
 * @param vp  data word handed to the resumed side
 * @return on eventual resumption: the context that switched back to
 *         us and its data word.
 */
Transfer preempt_jump_fcontext(Context to, void *vp);

/**
 * Create a fresh context on the given stack.
 *
 * @param stack_top highest address of the stack (grows down)
 * @param size      stack size in bytes
 * @param fn        entry function
 * @return handle to the new (not yet started) context.
 */
Context preempt_make_fcontext(void *stack_top, std::size_t size,
                              EntryFn fn);

} // extern "C"

/** True when the fast assembly implementation is in use. */
bool haveFastContext();

} // namespace preempt::fcontext

#endif // PREEMPT_PREEMPTIBLE_FCONTEXT_HH
