/**
 * @file
 * Algorithm 1 on the real runtime: a control thread that samples the
 * PreemptibleRuntime's request statistics every period and adjusts its
 * time quantum through the shared core::QuantumController — the
 * host-side counterpart of the simulated adaptive mode, demonstrating
 * that the library's API is sufficient to express the paper's dynamic
 * policies ("the analysis ... is off the critical path").
 */

#ifndef PREEMPT_PREEMPTIBLE_ADAPTIVE_DRIVER_HH
#define PREEMPT_PREEMPTIBLE_ADAPTIVE_DRIVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "core/quantum_controller.hh"
#include "preemptible/runtime.hh"

namespace preempt::runtime {

/** Periodic controller thread bound to one runtime. */
class AdaptiveQuantumDriver
{
  public:
    struct Options
    {
        /** Algorithm 1 hyperparameters; host-scale defaults. */
        core::QuantumControllerParams params;

        /** Control period (paper: 10 s; scaled for tests). */
        TimeNs period = msToNs(200);

        /**
         * Capacity estimate for L_high/L_low. 0 = derive from the
         * highest completion rate observed so far (conservative
         * bootstrap).
         */
        double maxLoadRps = 0;

        /** Latency samples retained for the tail-index fit. */
        std::size_t sampleWindow = 4096;
    };

    AdaptiveQuantumDriver(PreemptibleRuntime &runtime, Options options);
    ~AdaptiveQuantumDriver();

    AdaptiveQuantumDriver(const AdaptiveQuantumDriver &) = delete;
    AdaptiveQuantumDriver &operator=(const AdaptiveQuantumDriver &) =
        delete;

    /** Feed a completed-task latency sample (hook this to the
     *  runtime's completion callback or call from application code). */
    void addLatencySample(TimeNs latency_ns);

    /** Stop the control thread (also done by the destructor). */
    void stop();

    /** Control decisions taken so far. */
    std::uint64_t decisions() const { return decisions_.load(); }

    /** The controller's current quantum. */
    TimeNs quantum() const { return runtime_.quantum(); }

  private:
    void controlLoop();
    void step();

    PreemptibleRuntime &runtime_;
    Options options_;
    core::QuantumController controller_;
    std::thread thread_;
    std::atomic<bool> running_{true};
    std::atomic<std::uint64_t> decisions_{0};

    std::mutex samplesMutex_;
    std::deque<double> samples_;

    std::uint64_t lastCompleted_ = 0;
    double peakRps_ = 0;
};

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_ADAPTIVE_DRIVER_HH
