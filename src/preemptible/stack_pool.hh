/**
 * @file
 * Pooled execution stacks for preemptible functions.
 *
 * The dispatcher allocates context objects and stack space for each
 * request from a global memory pool (section IV-B); stacks are
 * mmap'ed with a guard page and recycled through a free list so
 * steady-state fn_launch never enters the kernel.
 */

#ifndef PREEMPT_PREEMPTIBLE_STACK_POOL_HH
#define PREEMPT_PREEMPTIBLE_STACK_POOL_HH

#include <cstddef>
#include <mutex>
#include <vector>

namespace preempt::runtime {

/** One mmap'ed stack with an inaccessible guard page at the bottom. */
class Stack
{
  public:
    Stack() = default;

    void *top() const { return top_; }
    void *base() const { return base_; }
    std::size_t usable() const { return usable_; }
    bool valid() const { return base_ != nullptr; }

  private:
    friend class StackPool;
    void *base_ = nullptr;  ///< mapping start (guard page)
    void *top_ = nullptr;   ///< highest usable address
    std::size_t usable_ = 0;
    std::size_t mapped_ = 0;
};

/** Thread-safe pool of equally-sized stacks. */
class StackPool
{
  public:
    /**
     * @param stack_size usable bytes per stack (rounded up to pages)
     * @param guard      add an inaccessible guard page below the stack
     */
    explicit StackPool(std::size_t stack_size = 64 * 1024,
                       bool guard = true);
    ~StackPool();

    StackPool(const StackPool &) = delete;
    StackPool &operator=(const StackPool &) = delete;

    /** Get a stack (recycled or freshly mapped). */
    Stack acquire();

    /** Return a stack to the pool. */
    void release(Stack stack);

    /** Stacks currently cached in the free list. */
    std::size_t freeCount() const;

    /** Stacks ever mapped. */
    std::size_t totalAllocated() const { return allocated_; }

    std::size_t stackSize() const { return stackSize_; }

  private:
    Stack map();
    static void unmap(Stack &stack);

    std::size_t stackSize_;
    bool guard_;
    mutable std::mutex mutex_;
    std::vector<Stack> free_;
    std::size_t allocated_;
};

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_STACK_POOL_HH
