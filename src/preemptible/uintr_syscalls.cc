#include "preemptible/uintr_syscalls.hh"

#include <cerrno>
#include <mutex>

#include <sys/syscall.h>
#include <unistd.h>

#if defined(__x86_64__)
#include <cpuid.h>
#endif

namespace preempt::runtime {

namespace {

long
rawSyscall(long nr, long a = 0, long b = 0, long c = 0)
{
    long rc = ::syscall(nr, a, b, c);
    return rc < 0 ? -errno : rc;
}

bool
cpuHasUintr()
{
#if defined(__x86_64__)
    // CPUID.(EAX=7,ECX=0):EDX[5] = UINTR.
    unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        return false;
    return (edx & (1u << 5)) != 0;
#else
    return false;
#endif
}

} // namespace

UintrSupport
probeUintr()
{
    static UintrSupport support;
    static std::once_flag once;
    std::call_once(once, [] {
        support.cpu = cpuHasUintr();
        // Probing with invalid arguments: a UINTR-enabled kernel
        // returns -EINVAL, everything else -ENOSYS.
        long rc = rawSyscall(kNrUintrCreateFd, ~0L, ~0u);
        support.kernel = rc != -ENOSYS;
    });
    return support;
}

long
uintrRegisterHandler(void (*handler)(), unsigned int flags)
{
    return rawSyscall(kNrUintrRegisterHandler,
                      reinterpret_cast<long>(handler),
                      static_cast<long>(flags));
}

long
uintrUnregisterHandler(unsigned int flags)
{
    return rawSyscall(kNrUintrUnregisterHandler, static_cast<long>(flags));
}

long
uintrCreateFd(std::uint64_t vector, unsigned int flags)
{
    return rawSyscall(kNrUintrCreateFd, static_cast<long>(vector),
                      static_cast<long>(flags));
}

long
uintrRegisterSender(int fd, unsigned int flags)
{
    return rawSyscall(kNrUintrRegisterSender, fd,
                      static_cast<long>(flags));
}

long
uintrUnregisterSender(int fd, unsigned int flags)
{
    return rawSyscall(kNrUintrUnregisterSender, fd,
                      static_cast<long>(flags));
}

void
senduipi(unsigned long uipi_index)
{
#if defined(__x86_64__)
    // SENDUIPI r64 == F3 0F C7 /6. Emitted as raw bytes so pre-UINTR
    // assemblers accept the file; only reachable when probeUintr()
    // reports a usable platform.
    asm volatile(".byte 0xf3, 0x0f, 0xc7, 0xf0" ::"a"(uipi_index));
#else
    (void)uipi_index;
#endif
}

} // namespace preempt::runtime
