/**
 * @file
 * Host clock helpers for the real runtime. The paper's LibUtimer polls
 * the TSC; portably we use CLOCK_MONOTONIC nanoseconds, with an RDTSC
 * fast path for timestamping where available.
 */

#ifndef PREEMPT_PREEMPTIBLE_HOSTTIME_HH
#define PREEMPT_PREEMPTIBLE_HOSTTIME_HH

#include <ctime>

#include "common/time.hh"

namespace preempt::runtime {

/** Current host time in nanoseconds (CLOCK_MONOTONIC). */
inline TimeNs
hostNowNs()
{
    timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<TimeNs>(ts.tv_sec) * 1000000000ULL +
           static_cast<TimeNs>(ts.tv_nsec);
}

/** Raw TSC read (x86-64); falls back to the monotonic clock. */
inline std::uint64_t
rdtsc()
{
#if defined(__x86_64__)
    unsigned int lo, hi;
    asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
    return hostNowNs();
#endif
}

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_HOSTTIME_HH
