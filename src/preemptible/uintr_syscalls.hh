/**
 * @file
 * Wrappers for the UINTR kernel API of the Intel RFC patch series
 * (the kernel interface shown in Fig. 4 of the paper).
 *
 * The syscalls exist only on kernels carrying the UINTR patches for
 * Sapphire Rapids; everywhere else they return -ENOSYS and the runtime
 * falls back to signal-based preemption ("For older CPUs,
 * LibPreemptible will fall back to standard interrupts", section V).
 */

#ifndef PREEMPT_PREEMPTIBLE_UINTR_SYSCALLS_HH
#define PREEMPT_PREEMPTIBLE_UINTR_SYSCALLS_HH

#include <cstdint>

namespace preempt::runtime {

/**
 * Syscall numbers from the UINTR RFC (v1, targeting Linux 5.15 — the
 * kernel version the paper deploys on). Not upstream; probed at
 * runtime.
 */
enum UintrSyscallNr : long
{
    kNrUintrRegisterHandler = 449,
    kNrUintrUnregisterHandler = 450,
    kNrUintrCreateFd = 451,
    kNrUintrRegisterSender = 452,
    kNrUintrUnregisterSender = 453,
    kNrUintrWait = 454,
};

/** Result of probing the kernel + CPU for UINTR support. */
struct UintrSupport
{
    bool kernel = false; ///< syscalls present
    bool cpu = false;    ///< CPUID advertises UINTR
    bool usable() const { return kernel && cpu; }
};

/** Probe once (cached); safe to call repeatedly. */
UintrSupport probeUintr();

/** uintr_register_handler(handler, flags); <0 is -errno. */
long uintrRegisterHandler(void (*handler)(), unsigned int flags);

/** uintr_unregister_handler(flags). */
long uintrUnregisterHandler(unsigned int flags);

/** uintr_create_fd(vector, flags); returns fd or -errno. */
long uintrCreateFd(std::uint64_t vector, unsigned int flags);

/** uintr_register_sender(fd, flags); returns uipi index or -errno. */
long uintrRegisterSender(int fd, unsigned int flags);

/** uintr_unregister_sender(fd, flags). */
long uintrUnregisterSender(int fd, unsigned int flags);

/** SENDUIPI instruction wrapper (only valid when usable()). */
void senduipi(unsigned long uipi_index);

} // namespace preempt::runtime

#endif // PREEMPT_PREEMPTIBLE_UINTR_SYSCALLS_HH
