#include "preemptible/utimer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "preemptible/hosttime.hh"
#include "preemptible/uintr_syscalls.hh"

namespace preempt::runtime {

UTimer::~UTimer()
{
    shutdown();
}

void
UTimer::init(Options options)
{
    fatal_if(running_.load(), "utimer_init called twice");
    options_ = options;
    fatal_if(options_.maxThreads <= 0, "utimer needs maxThreads > 0");
    slots_ = std::vector<DeadlineSlot>(
        static_cast<std::size_t>(options_.maxThreads));
    usingUintr_ = probeUintr().usable();
    if (!usingUintr_) {
        inform("utimer: UINTR unavailable, using signal delivery "
               "(signo=%d)", options_.signo);
    }
    running_.store(true);
    thread_ = std::thread([this] { timerLoop(); });
}

void
UTimer::shutdown()
{
    if (!running_.exchange(false))
        return;
    if (thread_.joinable())
        thread_.join();
}

DeadlineSlot *
UTimer::registerThread()
{
    fatal_if(!running_.load(), "utimer_register before utimer_init");
    for (auto &slot : slots_) {
        bool expected = false;
        if (slot.inUse.compare_exchange_strong(expected, true)) {
            slot.tid.store(::pthread_self(),
                           std::memory_order_release);
            slot.deadline.store(kTimeNever, std::memory_order_release);
            return &slot;
        }
    }
    fatal("utimer slot table exhausted (maxThreads=%d)",
          options_.maxThreads);
}

void
UTimer::unregisterThread(DeadlineSlot *slot)
{
    panic_if(!slot, "unregistering a null slot");
    slot->deadline.store(kTimeNever, std::memory_order_release);
    slot->inUse.store(false, std::memory_order_release);
}

void
UTimer::registerWheel(WheelShard *shard)
{
    panic_if(!shard, "registering a null wheel shard");
    std::lock_guard<std::mutex> lock(wheelsMutex_);
    wheels_.push_back(shard);
}

void
UTimer::unregisterWheel(WheelShard *shard)
{
    // Taking wheelsMutex_ also waits out any advance pass that already
    // iterates the list, so the caller may free the shard on return.
    std::lock_guard<std::mutex> lock(wheelsMutex_);
    std::erase(wheels_, shard);
}

void
UTimer::timerLoop()
{
    while (running_.load(std::memory_order_relaxed)) {
        scans_.fetch_add(1, std::memory_order_relaxed);
        TimeNs now = hostNowNs();
        TimeNs soonest = kTimeNever;
        for (auto &slot : slots_) {
            if (!slot.inUse.load(std::memory_order_acquire))
                continue;
            TimeNs dl = slot.deadline.load(std::memory_order_acquire);
            if (dl == kTimeNever)
                continue;
            if (dl <= now) {
                // Claim the expiry so it fires exactly once, then
                // notify the thread.
                if (slot.deadline.compare_exchange_strong(dl, kTimeNever)) {
                    slot.fires.fetch_add(1, std::memory_order_relaxed);
                    firesTotal_.fetch_add(1, std::memory_order_relaxed);
                    lastFireNs_.store(now, std::memory_order_relaxed);
                    // a0 = lateness of the scan past the deadline; the
                    // slot index stands in for the target thread.
                    obs::emit(obs::EventKind::TimerFire,
                              static_cast<std::uint32_t>(&slot -
                                                         slots_.data()),
                              now, firesTotal_.load(
                                       std::memory_order_relaxed),
                              now - std::min(dl, now));
                    long uipi =
                        slot.uipiIndex.load(std::memory_order_acquire);
                    if (usingUintr_ && uipi >= 0)
                        senduipi(static_cast<unsigned long>(uipi));
                    else
                        ::pthread_kill(
                            slot.tid.load(std::memory_order_acquire),
                            options_.signo);
                }
            } else {
                soonest = std::min(soonest, dl);
            }
        }

        // Advance every registered per-worker wheel shard and fold its
        // next-fire hint into the nap decision.
        {
            std::lock_guard<std::mutex> lock(wheelsMutex_);
            bool sampleDepth =
                (scans_.load(std::memory_order_relaxed) & 63) == 0;
            for (WheelShard *shard : wheels_) {
                std::uint64_t before = shard->fires();
                shard->advance(now);
                wheelFiresTotal_.fetch_add(shard->fires() - before,
                                           std::memory_order_relaxed);
                soonest = std::min(soonest, shard->earliestHint());
                if (sampleDepth && !shard->depthGauge.empty()) {
                    obs::setGauge(shard->depthGauge.c_str(),
                                  static_cast<std::int64_t>(
                                      shard->depth()));
                }
            }
        }

        if (soonest == kTimeNever) {
            // Nothing armed: nap to keep small hosts responsive.
            if (options_.idleSleep) {
                timespec ts{0, static_cast<long>(options_.idleSleep)};
                ::nanosleep(&ts, nullptr);
            }
            continue;
        }
        TimeNs gap = soonest > now ? soonest - now : 0;
        if (gap > options_.spinThreshold && options_.idleSleep) {
            TimeNs nap = std::min(gap - options_.spinThreshold,
                                  options_.idleSleep);
            timespec ts{static_cast<time_t>(nap / 1000000000ULL),
                        static_cast<long>(nap % 1000000000ULL)};
            ::nanosleep(&ts, nullptr);
        }
        // Otherwise: spin straight into the next scan for precision.
    }
}

UTimer &
globalUTimer()
{
    static UTimer timer;
    return timer;
}

} // namespace preempt::runtime
