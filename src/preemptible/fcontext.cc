#include "preemptible/fcontext.hh"

#include "common/logging.hh"

namespace preempt::fcontext {

#if defined(__x86_64__) && defined(__ELF__)

bool
haveFastContext()
{
    return true;
}

#else

// Reference fallback so the library still links on other platforms;
// the runtime refuses to start without the fast implementation.

bool
haveFastContext()
{
    return false;
}

extern "C" Transfer
preempt_jump_fcontext(Context, void *)
{
    panic("fcontext is only implemented for x86-64 SysV");
}

extern "C" Context
preempt_make_fcontext(void *, std::size_t, EntryFn)
{
    panic("fcontext is only implemented for x86-64 SysV");
}

#endif

} // namespace preempt::fcontext
